package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/atomicfile"
	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
)

// Group-commit observability: how many commits each fsync retires, how long
// a commit waits for durability, and the raw append/fsync volume.
var (
	mAppends     = telemetry.Default().Counter("wal_appends_total")
	mAppendBytes = telemetry.Default().Counter("wal_append_bytes_total")
	mFsyncs      = telemetry.Default().Counter("wal_fsyncs_total")
	mRotations   = telemetry.Default().Counter("wal_rotations_total")
	hFsyncBatch  = telemetry.Default().Histogram("wal_fsync_batch_commits",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	hCommitWait = telemetry.Default().Histogram("wal_commit_seconds", nil)
)

// Options size a Writer.
type Options struct {
	// SegmentBytes rotates to a new log file once the current one reaches
	// this size (default 64 MB). Records never span segments; a segment may
	// overshoot by the final batch flushed into it.
	SegmentBytes int64
}

const defaultSegmentBytes = 64 << 20

// segPrefix/segSuffix name log segments by their starting LSN so the byte
// offset of any record maps directly to (file, offset).
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(start uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the segment start LSNs in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range entries {
		if s, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

type waiter struct {
	lsn   uint64
	ch    chan error
	start time.Time
}

// Writer is the append side of the log. Append frames a record into an
// in-memory buffer and returns its end LSN; Commit blocks until that LSN is
// durable. A single background syncer drains the buffer: it takes whatever
// records and waiters have accumulated, performs ONE write+fsync, and wakes
// every waiter — the group commit that lets N concurrent committers share
// one disk flush. Safe for concurrent use.
type Writer struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // LSN of the current file's first byte
	end      uint64 // next LSN (includes records still in pending)
	pending  []byte // framed records not yet written+synced
	waiters  []waiter
	err      error // sticky: a failed write/fsync poisons the writer
	closed   bool

	durable  atomic.Uint64 // highest fsynced LSN
	kick     chan struct{}
	stop     chan struct{}
	loopDone chan struct{}
}

// Open positions a Writer at the end of the log in dir, creating the first
// segment if the directory is empty. A torn final record (crash mid-append)
// is physically truncated away before appending resumes, so the log always
// ends at a record boundary.
func Open(dir string, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	starts, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	w := &Writer{
		dir:      dir,
		segBytes: opts.SegmentBytes,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if len(starts) == 0 {
		if err := w.openSegment(0); err != nil {
			return nil, err
		}
	} else {
		// Only the last segment can end mid-record; earlier segments were
		// fully flushed before rotation.
		last := starts[len(starts)-1]
		path := filepath.Join(dir, segName(last))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read tail segment: %w", err)
		}
		valid := uint64(0)
		for int(valid) < len(data) {
			_, _, n, err := decodeFrame(data[valid:])
			if err != nil {
				break // torn tail: resume appending at the last whole record
			}
			valid += n
		}
		if int64(valid) != int64(len(data)) {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open tail segment: %w", err)
		}
		w.f = f
		w.segStart = last
		w.end = last + valid
	}
	w.durable.Store(w.end)
	go w.syncLoop()
	return w, nil
}

// openSegment creates a fresh segment starting at LSN start (caller holds
// mu or is the constructor).
func (w *Writer) openSegment(start uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(start)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := atomicfile.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segStart = start
	return nil
}

// Append frames one record and returns the LSN to Commit on. The record is
// NOT durable until Commit (or Sync) returns for an LSN >= the returned one.
func (w *Writer) Append(typ byte, body []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("wal: writer closed")
	}
	if err := faults.Check(faults.SiteWALAppend); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if len(body) > MaxRecordBody {
		return 0, fmt.Errorf("wal: record body %d exceeds limit", len(body))
	}
	w.pending = appendFrame(w.pending, typ, body)
	w.end += frameSize(len(body))
	mAppends.Inc()
	mAppendBytes.Add(int64(frameSize(len(body))))
	return w.end, nil
}

// Commit blocks until every record at or below lsn is durable (written and
// fsynced). Concurrent commits are batched: all waiters present when the
// syncer wakes share a single fsync.
func (w *Writer) Commit(lsn uint64) error {
	if w.durable.Load() >= lsn {
		return nil
	}
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return w.err
	}
	if w.durable.Load() >= lsn {
		w.mu.Unlock()
		return nil
	}
	if w.closed {
		// Registering a waiter now could outlive the syncer's final drain
		// and never be woken; fail fast instead (Close documents that racing
		// commits may receive an error).
		w.mu.Unlock()
		return fmt.Errorf("wal: writer closed")
	}
	wt := waiter{lsn: lsn, ch: make(chan error, 1), start: time.Now()}
	w.waiters = append(w.waiters, wt)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	err := <-wt.ch
	hCommitWait.Observe(time.Since(wt.start).Seconds())
	return err
}

// AppendCommit appends one record and waits for it to be durable — the
// one-call form every auto-commit statement uses.
func (w *Writer) AppendCommit(typ byte, body []byte) (uint64, error) {
	lsn, err := w.Append(typ, body)
	if err != nil {
		return 0, err
	}
	return lsn, w.Commit(lsn)
}

// Sync flushes everything appended so far and returns once it is durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	end := w.end
	w.mu.Unlock()
	return w.Commit(end)
}

// DurableLSN returns the highest fsynced LSN.
func (w *Writer) DurableLSN() uint64 { return w.durable.Load() }

// EndLSN returns the next append position (includes non-durable records).
func (w *Writer) EndLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.end
}

func (w *Writer) syncLoop() {
	defer close(w.loopDone)
	for {
		select {
		case <-w.kick:
			w.flushBatch()
		case <-w.stop:
			// Final drain on Close: serve or fail any waiter left behind.
			w.flushBatch()
			return
		}
	}
}

// flushBatch is one group commit: snapshot the buffer and waiters, do one
// write+fsync, advance the durable horizon, wake everyone.
func (w *Writer) flushBatch() {
	w.mu.Lock()
	buf := w.pending
	ws := w.waiters
	w.pending = nil
	w.waiters = nil
	target := w.end
	f := w.f
	sticky := w.err
	w.mu.Unlock()
	if len(buf) == 0 && len(ws) == 0 {
		return
	}
	err := sticky
	needSync := len(buf) > 0
	for _, wt := range ws {
		if wt.lsn > w.durable.Load() {
			needSync = true
		}
	}
	if err == nil && needSync {
		err = faults.Check(faults.SiteWALFsync)
		if err == nil && len(buf) > 0 {
			_, err = f.Write(buf)
		}
		if err == nil {
			err = f.Sync()
		}
		if err == nil {
			mFsyncs.Inc()
			hFsyncBatch.Observe(float64(max(len(ws), 1)))
			w.durable.Store(target)
		}
	}
	if err != nil {
		// A failed or crashed flush poisons the writer: the durable horizon
		// stays where it was, nothing past it may be acknowledged, and all
		// later appends/commits fail fast.
		w.mu.Lock()
		if w.err == nil {
			w.err = fmt.Errorf("wal: flush failed: %w", err)
		}
		err = w.err
		w.mu.Unlock()
	}
	for _, wt := range ws {
		wt.ch <- err
	}
	if err == nil {
		w.maybeRotate(target)
	}
}

// maybeRotate starts a new segment once the current file has reached the
// size threshold. target is the durable end of the just-flushed batch: the
// rotation boundary, guaranteed to be a record boundary.
func (w *Writer) maybeRotate(target uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	if int64(target-w.segStart) < w.segBytes {
		return
	}
	old := w.f
	if err := w.openSegment(target); err != nil {
		w.err = err
		return
	}
	old.Close()
	mRotations.Inc()
}

// TruncateBefore removes whole segments that lie entirely below lsn —
// called after a checkpoint has made their records redundant. The segment
// containing lsn is kept. Returns the number of files removed.
func (w *Writer) TruncateBefore(lsn uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, s := range starts {
		// A segment is disposable if the next segment starts at or below
		// lsn (so every record in this one is below it) and it is not the
		// file currently being appended to.
		if i+1 >= len(starts) || starts[i+1] > lsn || s == w.segStart {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(s))); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := atomicfile.SyncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes outstanding records and releases the file. Commit calls
// racing Close may receive an error (never a hang); acknowledged commits
// stay durable.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	// Stop the syncer: its shutdown path runs one final flushBatch, which
	// writes+fsyncs everything appended so far and wakes every registered
	// waiter. closed is already set, so no new waiter can register after
	// that final snapshot.
	close(w.stop)
	<-w.loopDone
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	// Defensively settle anything still on the waiter list — honestly, by
	// the durable horizon — so no Commit can block forever past Close.
	for _, wt := range w.waiters {
		switch {
		case w.err != nil:
			wt.ch <- w.err
		case wt.lsn <= w.durable.Load():
			wt.ch <- nil
		default:
			wt.ch <- fmt.Errorf("wal: writer closed")
		}
	}
	w.waiters = nil
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}
