// Package wal is a segmented, CRC-framed write-ahead log with group commit.
// The ingest path appends a redo record describing each mutation, waits for
// the record to be durable (a single fsync goroutine batches every commit
// waiting at that moment — one disk flush acknowledges many commits), and
// only then applies the mutation to in-memory state. Recovery is redo-only
// ARIES: an analysis pass locates the last checkpoint and the valid end of
// the log (tolerating a torn final record from a crash mid-write), and a
// redo pass replays every complete record after the checkpoint. Transactions
// here are single-record (one COPY/INSERT/DDL/blob write each), so there is
// no undo phase: a record is either fully durable and replayed, or absent.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout (little-endian):
//
//	u32 length   — 1 (type byte) + len(body)
//	u32 crc32    — IEEE over the payload (type byte + body)
//	u8  type
//	... body
//
// The LSN of a record is the log-global byte offset of its length field;
// Append returns the *end* LSN (offset just past the body), which is what
// Commit waits on and what the next record starts at.
const headerSize = 8

// MaxRecordBody bounds a single record's body. A length field above this is
// interior corruption, not a huge record — the reader rejects it instead of
// attempting a multi-gigabyte allocation from a flipped bit.
const MaxRecordBody = 1 << 28 // 256 MB

// Record decode errors. ErrTornTail marks an incomplete final record — the
// expected shape of a crash mid-append, tolerated by recovery, which stops
// replay there. ErrCorrupt marks a record whose bytes are fully present but
// wrong (CRC mismatch, insane length): recovery refuses to proceed, because
// skipping interior records would silently drop committed transactions.
var (
	ErrTornTail = errors.New("wal: torn record at log tail")
	ErrCorrupt  = errors.New("wal: corrupt record")
)

// appendFrame frames one record into buf and returns the extended buffer.
func appendFrame(buf []byte, typ byte, body []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(body)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	buf = append(buf, hdr[:]...)
	buf = append(buf, typ)
	buf = append(buf, body...)
	return buf
}

// frameSize returns the framed size of a record with the given body length.
func frameSize(bodyLen int) uint64 { return uint64(headerSize + 1 + bodyLen) }

// decodeFrame decodes the first record in buf, returning its type, body (a
// view into buf) and total framed size. An incomplete frame returns
// ErrTornTail when the remaining bytes could plausibly be a half-written
// tail (truncated, or all zeros from preallocation); a complete frame with
// a CRC mismatch, or an impossible length field, returns ErrCorrupt.
func decodeFrame(buf []byte) (typ byte, body []byte, n uint64, err error) {
	if len(buf) < headerSize {
		return 0, nil, 0, tornOrCorrupt(buf)
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if length == 0 {
		// A zero length field is never written; it is either preallocated
		// zero fill past the true tail or corruption.
		return 0, nil, 0, tornOrCorrupt(buf)
	}
	if length > MaxRecordBody {
		return 0, nil, 0, fmt.Errorf("%w: length %d exceeds limit", ErrCorrupt, length)
	}
	total := headerSize + int(length)
	if len(buf) < total {
		// The header promises more bytes than exist: a record cut short by
		// a crash mid-write. Tolerated only at the very end of the log.
		return 0, nil, 0, ErrTornTail
	}
	payload := buf[headerSize:total]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload[0], payload[1:], uint64(total), nil
}

// tornOrCorrupt classifies a short/zero prefix: all-zero remainders look
// like preallocated space past the tail (torn, tolerated); any non-zero
// byte in what should be a header is corruption only if a full header is
// present — a partial header from a crash legitimately contains the first
// bytes of a real record, so short prefixes are always treated as torn.
func tornOrCorrupt(buf []byte) error {
	if len(buf) < headerSize {
		return ErrTornTail
	}
	for _, b := range buf {
		if b != 0 {
			return fmt.Errorf("%w: zero length with trailing data", ErrCorrupt)
		}
	}
	return ErrTornTail
}
