package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"verticadr/internal/telemetry"
)

// Recovery observability.
var (
	mReplayRecords = telemetry.Default().Counter("wal_recovery_records_total")
	mReplayBytes   = telemetry.Default().Counter("wal_recovery_bytes_total")
)

// ReplayStats reports what one recovery pass covered.
type ReplayStats struct {
	Records  int           // complete records delivered to the callback
	Bytes    int64         // framed bytes replayed
	Start    uint64        // LSN replay began at (the checkpoint horizon)
	End      uint64        // LSN of the valid end of the log
	Torn     bool          // a partial final record was discarded
	Segments int           // log files visited
	Elapsed  time.Duration // wall time of the redo pass
}

// Replay is the redo pass: it walks the log in dir from LSN `from` (a
// record boundary — typically the last checkpoint's horizon) and delivers
// every complete record, in order, to fn. A torn final record is tolerated
// and reported via stats.Torn; interior corruption (a CRC mismatch with the
// record bytes fully present, or corruption in any segment but the last)
// aborts with an error wrapping ErrCorrupt, because continuing would
// silently drop acknowledged commits. An empty or missing log directory
// replays nothing.
func Replay(dir string, from uint64, fn func(lsn uint64, typ byte, body []byte) error) (*ReplayStats, error) {
	t0 := time.Now()
	stats := &ReplayStats{Start: from, End: from}
	starts, err := listSegments(dir)
	if errors.Is(err, os.ErrNotExist) || len(starts) == 0 {
		stats.Elapsed = time.Since(t0)
		return stats, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: replay: %w", err)
	}
	// Analysis: locate the segment containing `from`. Segments below it are
	// pre-checkpoint and skipped whole.
	first := 0
	for i, s := range starts {
		if s <= from {
			first = i
		}
	}
	if from < starts[first] {
		return nil, fmt.Errorf("wal: replay horizon %d predates oldest segment %d (over-truncated log)", from, starts[first])
	}
	for i := first; i < len(starts); i++ {
		segStart := starts[i]
		lastSeg := i == len(starts)-1
		data, err := os.ReadFile(filepath.Join(dir, segName(segStart)))
		if err != nil {
			return nil, fmt.Errorf("wal: replay read segment: %w", err)
		}
		stats.Segments++
		off := uint64(0)
		if from > segStart {
			off = from - segStart // `from` is a record boundary inside this file
			if off > uint64(len(data)) {
				return nil, fmt.Errorf("%w: replay horizon %d beyond segment end", ErrCorrupt, from)
			}
		}
		for int(off) < len(data) {
			typ, body, n, err := decodeFrame(data[off:])
			if errors.Is(err, ErrTornTail) {
				if !lastSeg {
					// A mid-log segment may not end mid-record: rotation only
					// happens at flushed record boundaries.
					return nil, fmt.Errorf("%w: segment %016x ends mid-record", ErrCorrupt, segStart)
				}
				stats.Torn = true
				stats.Elapsed = time.Since(t0)
				return stats, nil
			}
			if err != nil {
				return nil, fmt.Errorf("wal: replay at lsn %d: %w", segStart+off, err)
			}
			if fn != nil {
				if err := fn(segStart+off, typ, body); err != nil {
					return nil, fmt.Errorf("wal: replay apply at lsn %d: %w", segStart+off, err)
				}
			}
			off += n
			stats.Records++
			stats.Bytes += int64(n)
			stats.End = segStart + off
			mReplayRecords.Inc()
			mReplayBytes.Add(int64(n))
		}
	}
	stats.Elapsed = time.Since(t0)
	return stats, nil
}
