package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"verticadr/internal/atomicfile"
)

// MarkerFile is the checkpoint pointer written next to the log segments.
// It is replaced atomically, so recovery always finds either the previous
// checkpoint or the new one — never half of each.
const MarkerFile = "CHECKPOINT"

// Checkpoint records a durable materialization of the database state: Dir
// names a snapshot directory (relative to the data root) containing the
// full state as of LSN, so recovery loads that snapshot and replays only
// records at or after LSN.
type Checkpoint struct {
	LSN      uint64 `json:"lsn"`
	Dir      string `json:"dir"`
	UnixNano int64  `json:"unix_nano"`
}

// SaveCheckpoint atomically installs the checkpoint marker in dir.
func SaveCheckpoint(dir string, c Checkpoint) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("wal: marshal checkpoint: %w", err)
	}
	return atomicfile.WriteFile(filepath.Join(dir, MarkerFile), append(data, '\n'), 0o644)
}

// LoadCheckpoint reads the checkpoint marker; ok is false when none exists
// (a log that has never been checkpointed replays from LSN 0).
func LoadCheckpoint(dir string) (Checkpoint, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, MarkerFile))
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("wal: read checkpoint marker: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return Checkpoint{}, false, fmt.Errorf("wal: parse checkpoint marker: %w", err)
	}
	return c, true, nil
}
