// Package index implements the secondary-index structure behind CREATE
// INDEX: a copy-on-write B+-tree mapping the distinct keys of one column to
// the ascending row positions holding them. Row positions are append order,
// which is also scan order, so an index lookup followed by a positional
// gather reproduces a filtered full scan byte for byte — the property the
// planner's differential tests pin.
//
// The tree is immutable once published: Insert path-copies from the root, so
// a cloned segment can keep reading the old tree while the owner of a new
// version extends it. Float NaN keys are held in a side list rather than the
// ordered tree, because the engine's comparison (cmpOrdered) reports NaN as
// neither less than nor greater than anything — NaN rows therefore "equal"
// every probe and must surface for =, <= and >= lookups but never for < or >.
package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Op mirrors colstore.CompareOp value for value, so callers convert with a
// plain cast. OpNE is never index-served (a B-tree cannot beat a scan for
// inequality); Lookup reports it unhandled.
type Op uint8

// Comparison operators, in colstore.CompareOp order.
const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// fanout bounds leaf and internal node width: nodes split past 2*fanout
// entries and the bulk builder packs them at fanout, leaving slack for
// appends before the first split.
const fanout = 64

// entry is one distinct key and the ascending row positions holding it.
type entry struct {
	key  any
	rows []uint32
}

type node struct {
	leaf    bool
	entries []entry // leaf payload
	keys    []any   // internal separators: keys[i] = min key of children[i+1]
	childs  []*node
}

// Tree is one column's secondary index. The zero value is not usable; build
// with a Builder or DecodeTree.
type Tree struct {
	root *node
	nan  []uint32 // rows whose float key is NaN, ascending
	rows int      // total rows indexed, NaN rows included
	keys int      // distinct non-NaN keys
}

// Rows returns the number of rows the index covers.
func (t *Tree) Rows() int { return t.rows }

// DistinctKeys returns the number of distinct non-NaN keys — the NDV the
// planner uses for equality selectivity.
func (t *Tree) DistinctKeys() int { return t.keys }

// cmpKey totally orders key values with the engine's numeric widening
// (INTEGER and FLOAT compare numerically, bools order false < true). The
// second result is false for incomparable types. NaN never reaches here as a
// stored key; a NaN probe is handled by Lookup before descending.
func cmpKey(a, b any) (int, bool) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmp3(x, y), true
		case float64:
			return cmp3(float64(x), y), true
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmp3(x, float64(y)), true
		case float64:
			return cmp3(x, y), true
		}
	case string:
		if y, ok := b.(string); ok {
			return cmp3(x, y), true
		}
	case bool:
		if y, ok := b.(bool); ok {
			xi, yi := 0, 0
			if x {
				xi = 1
			}
			if y {
				yi = 1
			}
			return cmp3(xi, yi), true
		}
	}
	return 0, false
}

func cmp3[T int | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func isNaN(key any) bool {
	f, ok := key.(float64)
	return ok && math.IsNaN(f)
}

// Builder accumulates (key, row) pairs and bulk-builds a packed tree.
// Rows must be added in ascending row order (the natural order when
// indexing a segment front to back).
type Builder struct {
	pairs []entry // one row per entry pre-sort; grouped during Build
	nan   []uint32
}

// Add records one row's key.
func (b *Builder) Add(key any, row uint32) {
	if isNaN(key) {
		b.nan = append(b.nan, row)
		return
	}
	b.pairs = append(b.pairs, entry{key: key, rows: []uint32{row}})
}

// Build sorts, groups and packs the accumulated pairs into a tree. Keys must
// be mutually comparable (one column's values always are); incomparable keys
// make the build fail.
func (b *Builder) Build() (*Tree, error) {
	var badCmp error
	sort.SliceStable(b.pairs, func(i, j int) bool {
		c, ok := cmpKey(b.pairs[i].key, b.pairs[j].key)
		if !ok && badCmp == nil {
			badCmp = fmt.Errorf("index: cannot compare %T with %T", b.pairs[i].key, b.pairs[j].key)
		}
		return c < 0
	})
	if badCmp != nil {
		return nil, badCmp
	}
	// Group equal adjacent keys. The sort is stable and each input pair holds
	// one row added in ascending row order, so grouped rows stay ascending.
	var entries []entry
	for _, p := range b.pairs {
		if n := len(entries); n > 0 {
			if c, _ := cmpKey(entries[n-1].key, p.key); c == 0 {
				entries[n-1].rows = append(entries[n-1].rows, p.rows[0])
				continue
			}
		}
		entries = append(entries, p)
	}
	t := &Tree{nan: b.nan, keys: len(entries)}
	for _, e := range entries {
		t.rows += len(e.rows)
	}
	t.rows += len(b.nan)
	// Pack leaves at the build fanout, then stack internal levels.
	var leaves []*node
	for len(entries) > 0 {
		n := min(fanout, len(entries))
		leaves = append(leaves, &node{leaf: true, entries: entries[:n:n]})
		entries = entries[n:]
	}
	if len(leaves) == 0 {
		t.root = &node{leaf: true}
		return t, nil
	}
	level := leaves
	for len(level) > 1 {
		var up []*node
		for len(level) > 0 {
			n := min(fanout, len(level))
			in := &node{childs: level[:n:n]}
			for _, c := range in.childs[1:] {
				in.keys = append(in.keys, minKey(c))
			}
			up = append(up, in)
			level = level[n:]
		}
		level = up
	}
	t.root = level[0]
	return t, nil
}

func minKey(n *node) any {
	for !n.leaf {
		n = n.childs[0]
	}
	return n.entries[0].key
}

// Insert returns a new tree containing (key, row); the receiver is
// unchanged. row must exceed every row already indexed for the stored
// per-key row lists to stay ascending (segment appends guarantee this).
func (t *Tree) Insert(key any, row uint32) (*Tree, error) {
	out := &Tree{nan: t.nan, rows: t.rows + 1, keys: t.keys}
	if isNaN(key) {
		out.nan = append(t.nan[:len(t.nan):len(t.nan)], row)
		out.root = t.root
		return out, nil
	}
	root, sib, sepKey, added, err := insertNode(t.root, key, row)
	if err != nil {
		return nil, err
	}
	if added {
		out.keys++
	}
	if sib != nil {
		root = &node{keys: []any{sepKey}, childs: []*node{root, sib}}
	}
	out.root = root
	return out, nil
}

// insertNode path-copies n with (key, row) inserted. When the copy splits it
// returns the right sibling and its separator key. added reports whether the
// key is new to the tree.
func insertNode(n *node, key any, row uint32) (cp, sib *node, sepKey any, added bool, err error) {
	if n.leaf {
		i := 0
		for ; i < len(n.entries); i++ {
			c, ok := cmpKey(key, n.entries[i].key)
			if !ok {
				return nil, nil, nil, false, fmt.Errorf("index: cannot compare %T with %T", key, n.entries[i].key)
			}
			if c == 0 {
				cp = &node{leaf: true, entries: slices.Clone(n.entries)}
				e := &cp.entries[i]
				e.rows = append(e.rows[:len(e.rows):len(e.rows)], row)
				return cp, nil, nil, false, nil
			}
			if c < 0 {
				break
			}
		}
		cp = &node{leaf: true, entries: make([]entry, 0, len(n.entries)+1)}
		cp.entries = append(cp.entries, n.entries[:i]...)
		cp.entries = append(cp.entries, entry{key: key, rows: []uint32{row}})
		cp.entries = append(cp.entries, n.entries[i:]...)
		if len(cp.entries) > 2*fanout {
			h := len(cp.entries) / 2
			sib = &node{leaf: true, entries: cp.entries[h:len(cp.entries):len(cp.entries)]}
			cp.entries = cp.entries[:h:h]
			return cp, sib, sib.entries[0].key, true, nil
		}
		return cp, nil, nil, true, nil
	}
	ci := 0
	for ci < len(n.keys) {
		c, ok := cmpKey(key, n.keys[ci])
		if !ok {
			return nil, nil, nil, false, fmt.Errorf("index: cannot compare %T with %T", key, n.keys[ci])
		}
		if c < 0 {
			break
		}
		ci++
	}
	child, csib, csep, added, err := insertNode(n.childs[ci], key, row)
	if err != nil {
		return nil, nil, nil, false, err
	}
	cp = &node{keys: slices.Clone(n.keys), childs: slices.Clone(n.childs)}
	cp.childs[ci] = child
	if csib != nil {
		cp.keys = slices.Insert(cp.keys, ci, csep)
		cp.childs = slices.Insert(cp.childs, ci+1, csib)
		if len(cp.childs) > 2*fanout {
			h := len(cp.childs) / 2
			sepKey = cp.keys[h-1]
			sib = &node{
				keys:   cp.keys[h:len(cp.keys):len(cp.keys)],
				childs: cp.childs[h:len(cp.childs):len(cp.childs)],
			}
			cp.keys = cp.keys[: h-1 : h-1]
			cp.childs = cp.childs[:h:h]
			return cp, sib, sepKey, added, nil
		}
	}
	return cp, nil, nil, added, nil
}

// Lookup returns the rows matching `column op val`, sorted ascending —
// identical membership and order to a filtered full scan under the engine's
// comparison semantics (NaN rows surface for =, <= and >=). handled is false
// when the operator or value type cannot be index-served; the caller must
// fall back to a scan.
func (t *Tree) Lookup(op Op, val any) (rows []uint32, handled bool) {
	if op == OpNE {
		return nil, false
	}
	switch val.(type) {
	case int64, float64, string, bool:
	default:
		return nil, false
	}
	if isNaN(val) {
		// Every stored key compares "equal" to a NaN probe.
		switch op {
		case OpEQ, OpLE, OpGE:
			rows = t.allRows()
		}
		return rows, true
	}
	// Comparability probe: any stored key stands in for all of them.
	if t.keys > 0 {
		if _, ok := cmpKey(minKey(t.root), val); !ok {
			return nil, false
		}
	}
	out := make([]uint32, 0, 16)
	visit(t.root, op, val, func(e *entry) {
		out = append(out, e.rows...)
	})
	if op == OpEQ || op == OpLE || op == OpGE {
		out = append(out, t.nan...)
	}
	slices.Sort(out)
	return out, true
}

// LookupRange returns the rows satisfying `lo AND hi` — a lower bound (> or
// >=) and an upper bound (< or <=) over the same column — in one bounded
// tree walk, sorted ascending. Membership and order match a filtered full
// scan applying both predicates under the engine's comparison semantics.
// handled is false for unsupported operators or incomparable bound values;
// the caller must then fall back to a scan.
func (t *Tree) LookupRange(loOp Op, lo any, hiOp Op, hi any) (rows []uint32, handled bool) {
	if loOp != OpGT && loOp != OpGE {
		return nil, false
	}
	if hiOp != OpLT && hiOp != OpLE {
		return nil, false
	}
	for _, v := range [2]any{lo, hi} {
		switch v.(type) {
		case int64, float64, string, bool:
		default:
			return nil, false
		}
		if isNaN(v) {
			// A NaN bound degenerates ("equal to everything"): not worth a
			// range walk, and unreachable from parsed SQL anyway.
			return nil, false
		}
	}
	if t.keys > 0 {
		mk := minKey(t.root)
		if _, ok := cmpKey(mk, lo); !ok {
			return nil, false
		}
		if _, ok := cmpKey(mk, hi); !ok {
			return nil, false
		}
	}
	out := make([]uint32, 0, 16)
	visitRange(t.root, loOp, lo, hiOp, hi, func(e *entry) {
		out = append(out, e.rows...)
	})
	// A NaN key compares equal to both bounds, so it passes exactly when
	// both operators accept equality.
	if loOp == OpGE && hiOp == OpLE {
		out = append(out, t.nan...)
	}
	slices.Sort(out)
	return out, true
}

// visitRange walks the entries inside [lo, hi] in key order, pruning
// subtrees below the lower bound and stopping past the upper one. The
// separator invariants match visit's: child ci holds keys in
// [keys[ci-1], keys[ci]).
func visitRange(n *node, loOp Op, lo any, hiOp Op, hi any, fn func(*entry)) {
	if n.leaf {
		for i := range n.entries {
			cl, _ := cmpKey(n.entries[i].key, lo)
			ch, _ := cmpKey(n.entries[i].key, hi)
			if opMatch(loOp, cl) && opMatch(hiOp, ch) {
				fn(&n.entries[i])
			}
		}
		return
	}
	for ci, child := range n.childs {
		if ci > 0 {
			// Keys in this child are >= keys[ci-1]: once that floor passes
			// the upper bound, this child and all later ones are out.
			if c, _ := cmpKey(n.keys[ci-1], hi); c > 0 || (c == 0 && hiOp == OpLT) {
				return
			}
		}
		if ci < len(n.keys) {
			// Keys in this child are strictly below keys[ci]: a separator at
			// or under the lower bound rules the whole child out.
			if c, _ := cmpKey(n.keys[ci], lo); c <= 0 {
				continue
			}
		}
		visitRange(child, loOp, lo, hiOp, hi, fn)
	}
}

func (t *Tree) allRows() []uint32 {
	out := make([]uint32, 0, t.rows)
	visitAll(t.root, func(e *entry) { out = append(out, e.rows...) })
	out = append(out, t.nan...)
	slices.Sort(out)
	return out
}

func visitAll(n *node, fn func(*entry)) {
	if n.leaf {
		for i := range n.entries {
			fn(&n.entries[i])
		}
		return
	}
	for _, c := range n.childs {
		visitAll(c, fn)
	}
}

// visit walks the entries satisfying `key op val` in key order, pruning
// subtrees through the separator keys. Comparability was established by the
// caller, so cmpKey results are trusted here.
func visit(n *node, op Op, val any, fn func(*entry)) {
	if n.leaf {
		for i := range n.entries {
			c, _ := cmpKey(n.entries[i].key, val)
			if opMatch(op, c) {
				fn(&n.entries[i])
			}
		}
		return
	}
	for ci, child := range n.childs {
		// Child ci holds keys in [keys[ci-1], keys[ci]): separators are the
		// next child's minimum and keys are distinct, so every key in child
		// ci is strictly below keys[ci] and at least keys[ci-1].
		if ci > 0 && (op == OpEQ || op == OpLT || op == OpLE) {
			c, _ := cmpKey(n.keys[ci-1], val)
			if c > 0 || (c == 0 && op == OpLT) {
				return // this child and all later ones start past the range
			}
		}
		if ci < len(n.keys) && (op == OpEQ || op == OpGT || op == OpGE) {
			// keys[ci] <= val means everything in child ci is < val (strictly
			// below the separator), so no =, > or >= match lives there.
			if c, _ := cmpKey(n.keys[ci], val); c <= 0 {
				continue
			}
		}
		visit(child, op, val, fn)
	}
}

func opMatch(op Op, c int) bool {
	switch op {
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	}
	return false
}

// Encode serializes the tree as a flat (key, rows) dump with delta-encoded
// row lists — the crash-atomic checkpoint format (.vidx). Decoding bulk-
// rebuilds the tree, so the node layout never reaches disk.
func (t *Tree) Encode() []byte {
	out := []byte{1} // version
	out = binary.AppendUvarint(out, uint64(t.keys))
	visitAll(t.root, func(e *entry) {
		out = appendKey(out, e.key)
		out = appendRows(out, e.rows)
	})
	out = appendRows(out, t.nan)
	return out
}

const (
	kindInt byte = iota + 1
	kindFloat
	kindString
	kindBool
)

func appendKey(out []byte, key any) []byte {
	switch k := key.(type) {
	case int64:
		out = append(out, kindInt)
		out = binary.LittleEndian.AppendUint64(out, uint64(k))
	case float64:
		out = append(out, kindFloat)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(k))
	case string:
		out = append(out, kindString)
		out = binary.AppendUvarint(out, uint64(len(k)))
		out = append(out, k...)
	case bool:
		out = append(out, kindBool)
		if k {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

func appendRows(out []byte, rows []uint32) []byte {
	out = binary.AppendUvarint(out, uint64(len(rows)))
	prev := uint32(0)
	for _, r := range rows {
		out = binary.AppendUvarint(out, uint64(r-prev))
		prev = r
	}
	return out
}

// DecodeTree rebuilds a tree from Encode's output.
func DecodeTree(data []byte) (*Tree, error) {
	if len(data) < 1 || data[0] != 1 {
		return nil, fmt.Errorf("index: bad tree version")
	}
	data = data[1:]
	nkeys, m := binary.Uvarint(data)
	if m <= 0 {
		return nil, fmt.Errorf("index: corrupt tree header")
	}
	data = data[m:]
	var b Builder
	for k := uint64(0); k < nkeys; k++ {
		key, rest, err := cutKey(data)
		if err != nil {
			return nil, err
		}
		rows, rest, err := cutRows(rest)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			b.Add(key, r)
		}
		data = rest
	}
	nan, data, err := cutRows(data)
	if err != nil {
		return nil, err
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes", len(data))
	}
	b.nan = nan
	return b.Build()
}

func cutKey(data []byte) (any, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("index: truncated key")
	}
	kind := data[0]
	data = data[1:]
	switch kind {
	case kindInt, kindFloat:
		if len(data) < 8 {
			return nil, nil, fmt.Errorf("index: truncated key")
		}
		u := binary.LittleEndian.Uint64(data)
		if kind == kindInt {
			return int64(u), data[8:], nil
		}
		return math.Float64frombits(u), data[8:], nil
	case kindString:
		n, m := binary.Uvarint(data)
		if m <= 0 || uint64(len(data)-m) < n {
			return nil, nil, fmt.Errorf("index: truncated string key")
		}
		return string(data[m : m+int(n)]), data[m+int(n):], nil
	case kindBool:
		if len(data) < 1 {
			return nil, nil, fmt.Errorf("index: truncated key")
		}
		return data[0] != 0, data[1:], nil
	default:
		return nil, nil, fmt.Errorf("index: unknown key kind %d", kind)
	}
}

func cutRows(data []byte) ([]uint32, []byte, error) {
	n, m := binary.Uvarint(data)
	if m <= 0 {
		return nil, nil, fmt.Errorf("index: corrupt row list")
	}
	data = data[m:]
	rows := make([]uint32, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, m := binary.Uvarint(data)
		if m <= 0 {
			return nil, nil, fmt.Errorf("index: corrupt row delta")
		}
		data = data[m:]
		prev += d
		if prev > math.MaxUint32 {
			return nil, nil, fmt.Errorf("index: row %d out of range", prev)
		}
		rows = append(rows, uint32(prev))
	}
	return rows, data, nil
}
