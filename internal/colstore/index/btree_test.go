package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// refLookup filters keys the way the engine's scan does: NaN compares
// "equal" to everything (cmpOrdered returns 0), so NaN rows match =, <= and
// >= probes and never < or >.
func refLookup(keys []any, op Op, val any) []uint32 {
	var out []uint32
	for i, k := range keys {
		c := 0
		kf, kIsF := k.(float64)
		vf, vIsF := val.(float64)
		switch {
		case kIsF && math.IsNaN(kf), vIsF && math.IsNaN(vf):
			c = 0
		default:
			switch kk := k.(type) {
			case int64:
				switch vv := val.(type) {
				case int64:
					c = cmp3(kk, vv)
				case float64:
					c = cmp3(float64(kk), vv)
				}
			case float64:
				switch vv := val.(type) {
				case int64:
					c = cmp3(kk, float64(vv))
				case float64:
					c = cmp3(kk, vv)
				}
			case string:
				c = cmp3(kk, val.(string))
			case bool:
				ki, vi := 0, 0
				if kk {
					ki = 1
				}
				if val.(bool) {
					vi = 1
				}
				c = cmp3(ki, vi)
			}
		}
		if opMatch(op, c) {
			out = append(out, uint32(i))
		}
	}
	return out
}

func buildFrom(t *testing.T, keys []any) *Tree {
	t.Helper()
	var b Builder
	for i, k := range keys {
		b.Add(k, uint32(i))
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func checkAllOps(t *testing.T, tr *Tree, keys []any, probes []any) {
	t.Helper()
	for _, val := range probes {
		for _, op := range []Op{OpEQ, OpLT, OpLE, OpGT, OpGE} {
			got, handled := tr.Lookup(op, val)
			if !handled {
				t.Fatalf("op %d val %v: not handled", op, val)
			}
			want := refLookup(keys, op, val)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("op %d val %v:\n got %v\nwant %v", op, val, got, want)
			}
		}
		if _, handled := tr.Lookup(OpNE, val); handled {
			t.Fatalf("OpNE must not be index-served")
		}
	}
}

func TestLookupIntDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]any, 5000)
	for i := range keys {
		keys[i] = int64(rng.Intn(300) - 150)
	}
	tr := buildFrom(t, keys)
	if tr.Rows() != len(keys) {
		t.Fatalf("rows = %d", tr.Rows())
	}
	probes := []any{int64(-151), int64(-150), int64(0), int64(7), int64(149), int64(150), int64(9999), float64(0.5), float64(-3)}
	checkAllOps(t, tr, keys, probes)
}

func TestLookupFloatWithNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := make([]any, 3000)
	for i := range keys {
		switch {
		case rng.Intn(20) == 0:
			keys[i] = math.NaN()
		case rng.Intn(10) == 0:
			keys[i] = 0.0 * float64(1-2*rng.Intn(2)) // mix +0 and -0
		default:
			keys[i] = math.Round(rng.Float64()*100) / 4
		}
	}
	tr := buildFrom(t, keys)
	probes := []any{0.0, math.Copysign(0, -1), 5.25, 12.5, int64(3), math.NaN(), -1.0, 100.0}
	checkAllOps(t, tr, keys, probes)
}

func TestLookupStringsAndBools(t *testing.T) {
	skeys := []any{"b", "a", "cc", "a", "", "zz", "b"}
	checkAllOps(t, buildFrom(t, skeys), skeys, []any{"a", "", "b", "q", "zzz"})
	bkeys := []any{true, false, true, true, false}
	checkAllOps(t, buildFrom(t, bkeys), bkeys, []any{true, false})
}

func TestInsertCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]any, 2000)
	for i := range keys {
		keys[i] = int64(rng.Intn(50))
	}
	base := buildFrom(t, keys)
	tr := base
	all := append([]any(nil), keys...)
	for i := 0; i < 3000; i++ {
		var k any
		if i%17 == 0 {
			k = math.NaN()
		} else {
			k = int64(rng.Intn(5000) - 2500)
		}
		var err error
		tr, err = tr.Insert(k, uint32(len(all)))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, k)
	}
	if tr.Rows() != len(all) {
		t.Fatalf("rows = %d want %d", tr.Rows(), len(all))
	}
	checkAllOps(t, tr, all, []any{int64(0), int64(-2500), int64(2499), int64(30), math.NaN()})
	// The original tree must be untouched by the inserts.
	if base.Rows() != len(keys) {
		t.Fatalf("base rows changed: %d", base.Rows())
	}
	checkAllOps(t, base, keys, []any{int64(0), int64(25), int64(49)})
}

// TestDeepTreeSplits drives enough distinct keys through Insert to split
// internal nodes (root height >= 3) and checks lookups stay exact.
func TestDeepTreeSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var tr *Tree
	var err error
	if tr, err = (&Builder{}).Build(); err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(20000)
	keys := make([]any, len(perm))
	for i, k := range perm {
		keys[i] = int64(k)
		if tr, err = tr.Insert(int64(k), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.DistinctKeys() != len(perm) || tr.Rows() != len(perm) {
		t.Fatalf("shape: %d keys %d rows", tr.DistinctKeys(), tr.Rows())
	}
	checkAllOps(t, tr, keys, []any{int64(0), int64(1), int64(9999), int64(19999), int64(20000), int64(-1)})
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]any, 1500)
	for i := range keys {
		switch rng.Intn(3) {
		case 0:
			keys[i] = math.NaN()
		case 1:
			keys[i] = float64(rng.Intn(40))
		default:
			keys[i] = float64(rng.Intn(40)) + 0.5
		}
	}
	tr := buildFrom(t, keys)
	enc := tr.Encode()
	dec, err := DecodeTree(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows() != tr.Rows() || dec.DistinctKeys() != tr.DistinctKeys() {
		t.Fatalf("decoded shape: rows %d/%d keys %d/%d", dec.Rows(), tr.Rows(), dec.DistinctKeys(), tr.DistinctKeys())
	}
	checkAllOps(t, dec, keys, []any{0.0, 20.5, 39.0, math.NaN()})
	// Corrupt / truncated inputs must error, never panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeTree(enc[:cut]); err == nil && cut < len(enc) {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := buildFrom(t, nil)
	for _, op := range []Op{OpEQ, OpLT, OpLE, OpGT, OpGE} {
		rows, handled := tr.Lookup(op, int64(1))
		if !handled || len(rows) != 0 {
			t.Fatalf("empty lookup: %v %v", rows, handled)
		}
	}
	dec, err := DecodeTree(tr.Encode())
	if err != nil || dec.Rows() != 0 {
		t.Fatalf("empty round trip: %v %v", dec, err)
	}
}

func TestIncomparableUnhandled(t *testing.T) {
	tr := buildFrom(t, []any{"a", "b"})
	if _, handled := tr.Lookup(OpEQ, int64(1)); handled {
		t.Fatal("string tree must not serve an int probe")
	}
}

// refRange filters keys satisfying both bounds, mirroring a scan that
// applies the two predicates row by row.
func refRange(keys []any, loOp Op, lo any, hiOp Op, hi any) []uint32 {
	lset := map[uint32]bool{}
	for _, r := range refLookup(keys, loOp, lo) {
		lset[r] = true
	}
	var out []uint32
	for _, r := range refLookup(keys, hiOp, hi) {
		if lset[r] {
			out = append(out, r)
		}
	}
	return out
}

func checkRanges(t *testing.T, tr *Tree, keys []any, bounds [][2]any) {
	t.Helper()
	for _, b := range bounds {
		for _, loOp := range []Op{OpGT, OpGE} {
			for _, hiOp := range []Op{OpLT, OpLE} {
				got, handled := tr.LookupRange(loOp, b[0], hiOp, b[1])
				if !handled {
					t.Fatalf("range %v..%v ops %d/%d: not handled", b[0], b[1], loOp, hiOp)
				}
				want := refRange(keys, loOp, b[0], hiOp, b[1])
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("range %v..%v ops %d/%d:\n got %v\nwant %v", b[0], b[1], loOp, hiOp, got, want)
				}
			}
		}
	}
}

func TestLookupRangeIntDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]any, 5000)
	for i := range keys {
		keys[i] = int64(rng.Intn(300) - 150)
	}
	tr := buildFrom(t, keys)
	checkRanges(t, tr, keys, [][2]any{
		{int64(-10), int64(10)},
		{int64(-151), int64(151)},
		{int64(100), int64(100)},
		{int64(50), int64(-50)}, // empty: lo above hi
		{float64(-0.5), float64(42.5)},
		{int64(-3), float64(2.75)}, // mixed-width bounds
	})
}

func TestLookupRangeFloatWithNaNKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	keys := make([]any, 3000)
	for i := range keys {
		switch rng.Intn(10) {
		case 0:
			keys[i] = math.NaN()
		case 1:
			keys[i] = math.Copysign(0, -1)
		default:
			keys[i] = float64(rng.Intn(200)-100) / 4
		}
	}
	tr := buildFrom(t, keys)
	// NaN keys compare equal to both bounds, so they surface exactly for
	// the >=/<= combination — refRange encodes the same rule via refLookup.
	checkRanges(t, tr, keys, [][2]any{
		{float64(-5), float64(5)},
		{float64(-0.25), float64(0.25)}, // straddles ±0.0
		{float64(-100), float64(100)},
		{int64(0), int64(10)},
	})
}

func TestLookupRangeStrings(t *testing.T) {
	keys := []any{"b", "delta", "a", "cc", "b", "zz", "", "delta"}
	tr := buildFrom(t, keys)
	checkRanges(t, tr, keys, [][2]any{
		{"a", "d"},
		{"", "zz"},
		{"delta", "delta"},
	})
}

func TestLookupRangeUnsupported(t *testing.T) {
	tr := buildFrom(t, []any{int64(1), int64(2), int64(3)})
	if _, handled := tr.LookupRange(OpEQ, int64(1), OpLT, int64(3)); handled {
		t.Fatal("equality lower bound must not be range-served")
	}
	if _, handled := tr.LookupRange(OpGE, int64(1), OpGE, int64(3)); handled {
		t.Fatal("two lower bounds must not be range-served")
	}
	if _, handled := tr.LookupRange(OpGE, math.NaN(), OpLT, int64(3)); handled {
		t.Fatal("NaN bound must fall back to a scan")
	}
	if _, handled := tr.LookupRange(OpGE, "a", OpLT, "z"); handled {
		t.Fatal("string bounds against int keys must fall back")
	}
}
