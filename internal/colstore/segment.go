package colstore

import (
	"fmt"
	"math"

	"verticadr/internal/telemetry"
)

// Scan-path telemetry: rows/bytes delivered and zone-map effectiveness,
// recorded for every scan regardless of caller.
var (
	mScanRows      = telemetry.Default().Counter("colstore_scan_rows_total")
	mScanBytes     = telemetry.Default().Counter("colstore_scan_bytes_total")
	mBlocksScanned = telemetry.Default().Counter("colstore_scan_blocks_total", telemetry.L("result", "scanned"))
	mBlocksSkipped = telemetry.Default().Counter("colstore_scan_blocks_total", telemetry.L("result", "skipped"))
)

// DefaultBlockRows is the number of rows per sealed block when not overridden.
const DefaultBlockRows = 4096

// blockRef is one sealed, encoded block of a column plus its zone-map stats.
type blockRef struct {
	data     []byte
	rows     int
	hasStats bool
	min, max float64 // valid for numeric columns when hasStats
}

// Segment is a horizontal slice of a table stored on one database node as
// encoded column blocks. Appends buffer into an open tail batch which is
// sealed into blocks every blockRows rows; scans decode block-at-a-time and
// can skip blocks using min/max statistics (zone maps).
type Segment struct {
	schema    Schema
	blockRows int
	sealed    [][]blockRef // per column
	tail      *Batch
	rows      int
}

// NewSegment creates an empty segment. blockRows <= 0 selects the default.
func NewSegment(schema Schema, blockRows int) *Segment {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	return &Segment{
		schema:    schema,
		blockRows: blockRows,
		sealed:    make([][]blockRef, len(schema)),
		tail:      NewBatch(schema),
	}
}

// Schema returns the segment's schema.
func (s *Segment) Schema() Schema { return s.schema }

// Rows returns the total row count.
func (s *Segment) Rows() int { return s.rows }

// Append adds the batch's rows to the segment.
func (s *Segment) Append(b *Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if !b.Schema.Equal(s.schema) {
		return fmt.Errorf("colstore: segment append schema mismatch")
	}
	if err := s.tail.AppendBatch(b); err != nil {
		return err
	}
	s.rows += b.Len()
	for s.tail.Len() >= s.blockRows {
		if err := s.sealPrefix(s.blockRows); err != nil {
			return err
		}
	}
	return nil
}

// Seal flushes the open tail into sealed blocks.
func (s *Segment) Seal() error {
	if s.tail.Len() == 0 {
		return nil
	}
	return s.sealPrefix(s.tail.Len())
}

func (s *Segment) sealPrefix(n int) error {
	head := s.tail.Slice(0, n)
	rest := s.tail.Slice(n, s.tail.Len())
	for i, col := range head.Cols {
		enc := BestEncoding(col)
		data, err := EncodeBlock(col, enc)
		if err != nil {
			return err
		}
		ref := blockRef{data: data, rows: col.Len()}
		ref.hasStats, ref.min, ref.max = vectorStats(col)
		s.sealed[i] = append(s.sealed[i], ref)
	}
	// Copy the remainder into a fresh tail so the sealed blocks do not share
	// backing arrays with future appends.
	nt := NewBatch(s.schema)
	if err := nt.AppendBatch(rest); err != nil {
		return err
	}
	s.tail = nt
	return nil
}

func vectorStats(v *Vector) (ok bool, min, max float64) {
	switch v.Type {
	case TypeInt64:
		if len(v.Ints) == 0 {
			return false, 0, 0
		}
		min, max = float64(v.Ints[0]), float64(v.Ints[0])
		for _, x := range v.Ints {
			f := float64(x)
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		return true, min, max
	case TypeFloat64:
		if len(v.Floats) == 0 {
			return false, 0, 0
		}
		min, max = v.Floats[0], v.Floats[0]
		for _, x := range v.Floats {
			if math.IsNaN(x) {
				return false, 0, 0
			}
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return true, min, max
	}
	return false, 0, 0
}

// CompareOp is a comparison operator for pushed-down predicates.
type CompareOp uint8

// Comparison operators.
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

// Pred is a single-column comparison predicate that scans can push down to
// skip blocks via zone maps and filter rows without materializing them.
type Pred struct {
	Col string
	Op  CompareOp
	Val any // int64, float64, string or bool
}

// blockMayMatch consults the zone map; returning true means "cannot rule out".
func (p *Pred) blockMayMatch(ref blockRef) bool {
	if !ref.hasStats {
		return true
	}
	var v float64
	switch x := p.Val.(type) {
	case int64:
		v = float64(x)
	case float64:
		v = x
	default:
		return true
	}
	switch p.Op {
	case OpEQ:
		return v >= ref.min && v <= ref.max
	case OpLT:
		return ref.min < v
	case OpLE:
		return ref.min <= v
	case OpGT:
		return ref.max > v
	case OpGE:
		return ref.max >= v
	default: // OpNE cannot be excluded by a min/max range in general
		return true
	}
}

// matchRows evaluates the predicate over a vector, returning matching indexes.
func (p *Pred) matchRows(v *Vector) ([]int, error) {
	n := v.Len()
	idx := make([]int, 0, n)
	cmp := func(c int) bool {
		switch p.Op {
		case OpEQ:
			return c == 0
		case OpNE:
			return c != 0
		case OpLT:
			return c < 0
		case OpLE:
			return c <= 0
		case OpGT:
			return c > 0
		case OpGE:
			return c >= 0
		}
		return false
	}
	for i := 0; i < n; i++ {
		c, err := CompareValues(v.Value(i), p.Val)
		if err != nil {
			return nil, err
		}
		if cmp(c) {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

// CompareValues compares two boxed values with SQL numeric widening
// (INTEGER vs FLOAT compares numerically). Returns -1, 0 or 1.
func CompareValues(a, b any) (int, error) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, y), nil
		case float64:
			return cmpOrdered(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, float64(y)), nil
		case float64:
			return cmpOrdered(x, y), nil
		}
	case string:
		if y, ok := b.(string); ok {
			return cmpOrdered(x, y), nil
		}
	case bool:
		if y, ok := b.(bool); ok {
			xi, yi := 0, 0
			if x {
				xi = 1
			}
			if y {
				yi = 1
			}
			return cmpOrdered(xi, yi), nil
		}
	}
	return 0, fmt.Errorf("colstore: cannot compare %T with %T", a, b)
}

func cmpOrdered[T int | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ScanStats reports what one scan touched: blocks decoded vs. skipped by
// zone maps, encoded bytes decoded, and rows delivered past the predicate.
type ScanStats struct {
	BlocksScanned int // sealed blocks decoded
	BlocksSkipped int // sealed blocks excluded by min/max stats
	TailRows      int // unsealed tail rows examined
	RowsOut       int // rows delivered to the callback
	BytesRead     int // encoded bytes of the blocks decoded
}

// Add accumulates another scan's stats (per-segment parallel scans merge
// into one per-query view).
func (st *ScanStats) Add(o ScanStats) {
	st.BlocksScanned += o.BlocksScanned
	st.BlocksSkipped += o.BlocksSkipped
	st.TailRows += o.TailRows
	st.RowsOut += o.RowsOut
	st.BytesRead += o.BytesRead
}

// Scan streams the named columns (nil = all) through fn in batches, applying
// the optional predicate. The predicate column need not be in the projection.
// fn receives batches it may retain; they do not alias segment storage.
func (s *Segment) Scan(cols []string, pred *Pred, fn func(*Batch) error) error {
	return s.ScanWithStats(cols, pred, nil, fn)
}

// ScanWithStats is Scan with per-scan observability: when st is non-nil it
// is filled with what the scan touched. Global telemetry counters are
// recorded either way.
func (s *Segment) ScanWithStats(cols []string, pred *Pred, st *ScanStats, fn func(*Batch) error) error {
	var local ScanStats
	if st == nil {
		st = &local
	}
	defer func() {
		mScanRows.Add(int64(st.RowsOut))
		mScanBytes.Add(int64(st.BytesRead))
		mBlocksScanned.Add(int64(st.BlocksScanned))
		mBlocksSkipped.Add(int64(st.BlocksSkipped))
	}()
	if cols == nil {
		cols = make([]string, len(s.schema))
		for i, c := range s.schema {
			cols[i] = c.Name
		}
	}
	outSchema, err := s.schema.Project(cols)
	if err != nil {
		return err
	}
	var predIdx = -1
	if pred != nil {
		predIdx = s.schema.ColIndex(pred.Col)
		if predIdx < 0 {
			return fmt.Errorf("colstore: predicate on unknown column %q", pred.Col)
		}
	}
	colIdx := make([]int, len(cols))
	for i, n := range cols {
		colIdx[i] = s.schema.ColIndex(n)
	}
	// Sealed blocks: every column has the same block boundaries.
	nblocks := 0
	if len(s.sealed) > 0 {
		nblocks = len(s.sealed[0])
	}
	for bi := 0; bi < nblocks; bi++ {
		if pred != nil && predIdx >= 0 && !pred.blockMayMatch(s.sealed[predIdx][bi]) {
			st.BlocksSkipped++ // zone-map skip
			continue
		}
		st.BlocksScanned++
		batch, err := s.decodeBlockRow(bi, colIdx, outSchema, predIdx, pred, st)
		if err != nil {
			return err
		}
		if batch.Len() == 0 {
			continue
		}
		st.RowsOut += batch.Len()
		if err := fn(batch); err != nil {
			return err
		}
	}
	// Tail.
	if s.tail.Len() > 0 {
		st.TailRows += s.tail.Len()
		batch, err := filterProject(s.tail, colIdx, outSchema, predIdx, pred)
		if err != nil {
			return err
		}
		if batch.Len() > 0 {
			st.RowsOut += batch.Len()
			if err := fn(batch); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Segment) decodeBlockRow(bi int, colIdx []int, outSchema Schema, predIdx int, pred *Pred, st *ScanStats) (*Batch, error) {
	var matchIdx []int
	if pred != nil {
		st.BytesRead += len(s.sealed[predIdx][bi].data)
		pv, err := DecodeBlock(s.sealed[predIdx][bi].data)
		if err != nil {
			return nil, err
		}
		matchIdx, err = pred.matchRows(pv)
		if err != nil {
			return nil, err
		}
		if len(matchIdx) == 0 {
			return &Batch{Schema: outSchema, Cols: emptyCols(outSchema)}, nil
		}
	}
	out := &Batch{Schema: outSchema, Cols: make([]*Vector, len(colIdx))}
	for i, ci := range colIdx {
		st.BytesRead += len(s.sealed[ci][bi].data)
		v, err := DecodeBlock(s.sealed[ci][bi].data)
		if err != nil {
			return nil, err
		}
		if matchIdx != nil {
			v = v.Gather(matchIdx)
		}
		out.Cols[i] = v
	}
	return out, nil
}

func filterProject(b *Batch, colIdx []int, outSchema Schema, predIdx int, pred *Pred) (*Batch, error) {
	var matchIdx []int
	if pred != nil {
		var err error
		matchIdx, err = pred.matchRows(b.Cols[predIdx])
		if err != nil {
			return nil, err
		}
	}
	out := &Batch{Schema: outSchema, Cols: make([]*Vector, len(colIdx))}
	for i, ci := range colIdx {
		v := b.Cols[ci]
		if matchIdx != nil {
			v = v.Gather(matchIdx)
		} else {
			nv := NewVector(v.Type, v.Len())
			if err := nv.AppendVector(v); err != nil {
				return nil, err
			}
			v = nv
		}
		out.Cols[i] = v
	}
	return out, nil
}

func emptyCols(schema Schema) []*Vector {
	out := make([]*Vector, len(schema))
	for i, c := range schema {
		out[i] = NewVector(c.Type, 0)
	}
	return out
}

// ReadAll materializes the whole segment (projection cols, nil = all).
func (s *Segment) ReadAll(cols []string) (*Batch, error) {
	var out *Batch
	err := s.Scan(cols, nil, func(b *Batch) error {
		if out == nil {
			out = b
			return nil
		}
		return out.AppendBatch(b)
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		schema := s.schema
		if cols != nil {
			schema, err = s.schema.Project(cols)
			if err != nil {
				return nil, err
			}
		}
		out = NewBatch(schema)
	}
	return out, nil
}

// CompressedBytes reports the total size of sealed block data (the on-wire /
// on-disk footprint before file framing).
func (s *Segment) CompressedBytes() int {
	total := 0
	for _, col := range s.sealed {
		for _, ref := range col {
			total += len(ref.data)
		}
	}
	return total
}
