package colstore

import (
	"context"
	"fmt"
	"math"
	"sync"

	"verticadr/internal/parallel"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

// Scan-path telemetry: rows/bytes delivered and zone-map effectiveness,
// recorded for every scan regardless of caller.
var (
	mScanRows      = telemetry.Default().Counter("colstore_scan_rows_total")
	mScanBytes     = telemetry.Default().Counter("colstore_scan_bytes_total")
	mBlocksScanned = telemetry.Default().Counter("colstore_scan_blocks_total", telemetry.L("result", "scanned"))
	mBlocksSkipped = telemetry.Default().Counter("colstore_scan_blocks_total", telemetry.L("result", "skipped"))
	// Blocks whose predicate was evaluated on the encoded form (a subset of
	// the scanned count, never of the skipped count).
	mBlocksCompressed = telemetry.Default().Counter("colstore_scan_blocks_total", telemetry.L("result", "compressed"))
)

// DefaultBlockRows is the number of rows per sealed block when not overridden.
const DefaultBlockRows = 4096

// blockRef is one sealed, encoded block of a column plus its zone-map stats.
type blockRef struct {
	data     []byte
	rows     int
	hasStats bool
	min, max float64 // valid for numeric columns when hasStats
}

// Segment is a horizontal slice of a table stored on one database node as
// encoded column blocks. Appends buffer into an open tail batch which is
// sealed into blocks every blockRows rows; scans decode block-at-a-time and
// can skip blocks using min/max statistics (zone maps).
type Segment struct {
	schema    Schema
	blockRows int
	sealed    [][]blockRef // per column
	tail      *Batch
	rows      int
	// indexes holds the attached secondary B-tree indexes by column name.
	// Trees are copy-on-write (see internal/colstore/index): Clone shares
	// them, and Append republishes extended trees into this map only.
	indexes map[string]*indexTree
	// statsCache memoizes ColumnStats per column. The planner reads stats on
	// every Build, and recomputing NDV walks block headers and the whole
	// tail; concurrent planners may race on the fill, hence the mutex. Any
	// mutation (Append, Seal, index DDL) drops the cache; clones start cold.
	statsMu    sync.Mutex
	statsCache map[string]ColumnStats
}

// invalidateStats drops the memoized column statistics after a mutation.
func (s *Segment) invalidateStats() {
	s.statsMu.Lock()
	s.statsCache = nil
	s.statsMu.Unlock()
}

// NewSegment creates an empty segment. blockRows <= 0 selects the default.
func NewSegment(schema Schema, blockRows int) *Segment {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	return &Segment{
		schema:    schema,
		blockRows: blockRows,
		sealed:    make([][]blockRef, len(schema)),
		tail:      NewBatch(schema),
	}
}

// Schema returns the segment's schema.
func (s *Segment) Schema() Schema { return s.schema }

// Rows returns the total row count.
func (s *Segment) Rows() int { return s.rows }

// Append adds the batch's rows to the segment.
func (s *Segment) Append(b *Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if !b.Schema.Equal(s.schema) {
		return fmt.Errorf("colstore: segment append schema mismatch")
	}
	if err := s.tail.AppendBatch(b); err != nil {
		return err
	}
	s.invalidateStats()
	base := s.rows
	s.rows += b.Len()
	for s.tail.Len() >= s.blockRows {
		if err := s.sealPrefix(s.blockRows); err != nil {
			return err
		}
	}
	return s.maintainIndexes(b, base)
}

// Seal flushes the open tail into sealed blocks.
func (s *Segment) Seal() error {
	if s.tail.Len() == 0 {
		return nil
	}
	s.invalidateStats()
	return s.sealPrefix(s.tail.Len())
}

func (s *Segment) sealPrefix(n int) error {
	head := s.tail.Slice(0, n)
	rest := s.tail.Slice(n, s.tail.Len())
	for i, col := range head.Cols {
		enc := BestEncoding(col)
		data, err := EncodeBlock(col, enc)
		if err != nil {
			return err
		}
		ref := blockRef{data: data, rows: col.Len()}
		ref.hasStats, ref.min, ref.max = vectorStats(col)
		s.sealed[i] = append(s.sealed[i], ref)
	}
	// Copy the remainder into a fresh tail so the sealed blocks do not share
	// backing arrays with future appends.
	nt := NewBatch(s.schema)
	if err := nt.AppendBatch(rest); err != nil {
		return err
	}
	s.tail = nt
	return nil
}

func vectorStats(v *Vector) (ok bool, min, max float64) {
	switch v.Type {
	case TypeInt64:
		if len(v.Ints) == 0 {
			return false, 0, 0
		}
		min, max = float64(v.Ints[0]), float64(v.Ints[0])
		for _, x := range v.Ints {
			f := float64(x)
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		return true, min, max
	case TypeFloat64:
		if len(v.Floats) == 0 {
			return false, 0, 0
		}
		min, max = v.Floats[0], v.Floats[0]
		for _, x := range v.Floats {
			if math.IsNaN(x) {
				return false, 0, 0
			}
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return true, min, max
	}
	return false, 0, 0
}

// CompareOp is a comparison operator for pushed-down predicates.
type CompareOp uint8

// Comparison operators.
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	}
	return "?"
}

// Pred is a single-column comparison predicate that scans can push down to
// skip blocks via zone maps and filter rows without materializing them.
type Pred struct {
	Col string
	Op  CompareOp
	Val any // int64, float64, string or bool
}

// blockMayMatch consults the zone map; returning true means "cannot rule out".
func (p *Pred) blockMayMatch(ref blockRef) bool {
	if !ref.hasStats {
		return true
	}
	var v float64
	switch x := p.Val.(type) {
	case int64:
		v = float64(x)
	case float64:
		v = x
	default:
		return true
	}
	switch p.Op {
	case OpEQ:
		return v >= ref.min && v <= ref.max
	case OpLT:
		return ref.min < v
	case OpLE:
		return ref.min <= v
	case OpGT:
		return ref.max > v
	case OpGE:
		return ref.max >= v
	default: // OpNE cannot be excluded by a min/max range in general
		return true
	}
}

// matchRows evaluates the predicate over a vector, returning matching indexes.
func (p *Pred) matchRows(v *Vector) ([]int, error) {
	return p.matchRowsInto(v, nil)
}

// opMatch folds a three-way comparison through the operator.
func opMatch(op CompareOp, c int) bool {
	switch op {
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	}
	return false
}

// matchRowsInto evaluates the predicate over a vector, appending matching
// indexes into scratch[:0] (callers reuse one scratch slice across blocks so
// a scan performs no per-block index allocation once warm). The returned
// slice aliases scratch; it is valid until the next call with the same
// scratch. Typed inner loops avoid boxing every row through CompareValues.
func (p *Pred) matchRowsInto(v *Vector, scratch []int) ([]int, error) {
	idx := scratch[:0]
	op := p.Op
	switch v.Type {
	case TypeInt64:
		switch val := p.Val.(type) {
		case int64:
			for i, x := range v.Ints {
				if opMatch(op, cmpOrdered(x, val)) {
					idx = append(idx, i)
				}
			}
			return idx, nil
		case float64:
			for i, x := range v.Ints {
				if opMatch(op, cmpOrdered(float64(x), val)) {
					idx = append(idx, i)
				}
			}
			return idx, nil
		}
	case TypeFloat64:
		switch val := p.Val.(type) {
		case float64:
			for i, x := range v.Floats {
				if opMatch(op, cmpOrdered(x, val)) {
					idx = append(idx, i)
				}
			}
			return idx, nil
		case int64:
			fv := float64(val)
			for i, x := range v.Floats {
				if opMatch(op, cmpOrdered(x, fv)) {
					idx = append(idx, i)
				}
			}
			return idx, nil
		}
	case TypeString:
		if val, ok := p.Val.(string); ok {
			for i, x := range v.Strs {
				if opMatch(op, cmpOrdered(x, val)) {
					idx = append(idx, i)
				}
			}
			return idx, nil
		}
	case TypeBool:
		if val, ok := p.Val.(bool); ok {
			vi := 0
			if val {
				vi = 1
			}
			for i, x := range v.Bools {
				xi := 0
				if x {
					xi = 1
				}
				if opMatch(op, cmpOrdered(xi, vi)) {
					idx = append(idx, i)
				}
			}
			return idx, nil
		}
	}
	// Mixed-type fallback (e.g. comparing a bool column with an int literal):
	// box row values through the general comparison for its error reporting.
	for i := 0; i < v.Len(); i++ {
		c, err := CompareValues(v.Value(i), p.Val)
		if err != nil {
			return nil, err
		}
		if opMatch(op, c) {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

// CompareValues compares two boxed values with SQL numeric widening
// (INTEGER vs FLOAT compares numerically). Returns -1, 0 or 1.
func CompareValues(a, b any) (int, error) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, y), nil
		case float64:
			return cmpOrdered(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, float64(y)), nil
		case float64:
			return cmpOrdered(x, y), nil
		}
	case string:
		if y, ok := b.(string); ok {
			return cmpOrdered(x, y), nil
		}
	case bool:
		if y, ok := b.(bool); ok {
			xi, yi := 0, 0
			if x {
				xi = 1
			}
			if y {
				yi = 1
			}
			return cmpOrdered(xi, yi), nil
		}
	}
	return 0, fmt.Errorf("colstore: cannot compare %T with %T", a, b)
}

func cmpOrdered[T int | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ScanStats reports what one scan touched: blocks decoded vs. skipped by
// zone maps, encoded bytes decoded, and rows delivered past the predicate.
type ScanStats struct {
	BlocksScanned int // sealed blocks decoded
	BlocksSkipped int // sealed blocks excluded by min/max stats
	// BlocksCompressed counts scanned blocks whose predicate was evaluated
	// directly on the encoded form (RLE runs / dictionary codes) without a
	// full decode. Always a subset of BlocksScanned, disjoint from
	// BlocksSkipped: a zone-map skip touches no payload at all.
	BlocksCompressed int
	TailRows         int // unsealed tail rows examined
	RowsOut          int // rows delivered to the callback
	BytesRead        int // encoded bytes of the blocks decoded
}

// Add accumulates another scan's stats (per-segment parallel scans merge
// into one per-query view).
func (st *ScanStats) Add(o ScanStats) {
	st.BlocksScanned += o.BlocksScanned
	st.BlocksSkipped += o.BlocksSkipped
	st.BlocksCompressed += o.BlocksCompressed
	st.TailRows += o.TailRows
	st.RowsOut += o.RowsOut
	st.BytesRead += o.BytesRead
}

// idxScratch recycles predicate index slices across blocks and scans: one
// scratch per concurrently-decoding goroutine instead of one allocation per
// block, so parallel scans do not multiply allocations per core.
var idxScratch = sync.Pool{New: func() any {
	s := make([]int, 0, DefaultBlockRows)
	return &s
}}

// scanPlan is the resolved form of a scan request, shared by the serial and
// parallel paths.
type scanPlan struct {
	colIdx    []int
	outSchema Schema
	predIdx   int
	nblocks   int
	// zone carries auxiliary zone-map-only predicates: each can skip sealed
	// blocks via min/max stats but never filters rows (the executor keeps
	// them as residual filters, so skipping is a pure optimization).
	zone []zonePred
}

type zonePred struct {
	pred   Pred
	colIdx int
}

// blockSkipped reports whether sealed block bi is excluded by the primary
// predicate's zone map or by any auxiliary zone predicate.
func (p *scanPlan) blockSkipped(s *Segment, pred *Pred, bi int) bool {
	if pred != nil && p.predIdx >= 0 && !pred.blockMayMatch(s.sealed[p.predIdx][bi]) {
		return true
	}
	for i := range p.zone {
		if !p.zone[i].pred.blockMayMatch(s.sealed[p.zone[i].colIdx][bi]) {
			return true
		}
	}
	return false
}

func (s *Segment) planScan(cols []string, pred *Pred) (*scanPlan, error) {
	if cols == nil {
		cols = make([]string, len(s.schema))
		for i, c := range s.schema {
			cols[i] = c.Name
		}
	}
	outSchema, err := s.schema.Project(cols)
	if err != nil {
		return nil, err
	}
	predIdx := -1
	if pred != nil {
		predIdx = s.schema.ColIndex(pred.Col)
		if predIdx < 0 {
			return nil, fmt.Errorf("colstore: predicate on unknown column %q", pred.Col)
		}
	}
	colIdx := make([]int, len(cols))
	for i, n := range cols {
		colIdx[i] = s.schema.ColIndex(n)
	}
	// Sealed blocks: every column has the same block boundaries.
	nblocks := 0
	if len(s.sealed) > 0 {
		nblocks = len(s.sealed[0])
	}
	return &scanPlan{colIdx: colIdx, outSchema: outSchema, predIdx: predIdx, nblocks: nblocks}, nil
}

// recordScanTelemetry flushes one scan's stats into the global counters.
func recordScanTelemetry(st *ScanStats) {
	mScanRows.Add(int64(st.RowsOut))
	mScanBytes.Add(int64(st.BytesRead))
	mBlocksScanned.Add(int64(st.BlocksScanned))
	mBlocksSkipped.Add(int64(st.BlocksSkipped))
	mBlocksCompressed.Add(int64(st.BlocksCompressed))
}

// Scan streams the named columns (nil = all) through fn in batches, applying
// the optional predicate. The predicate column need not be in the projection.
// Delivered batches are only valid during the fn call: the scanner reuses
// decode buffers across blocks, and tail batches are views of live segment
// storage. fn must copy (not mutate) whatever it keeps.
func (s *Segment) Scan(cols []string, pred *Pred, fn func(*Batch) error) error {
	return s.ScanWithStats(cols, pred, nil, fn)
}

// ScanWithStats is Scan with per-scan observability: when st is non-nil it
// is filled with what the scan touched. Global telemetry counters are
// recorded either way. This is the serial reference path; ParScanWithStats
// is the block-parallel equivalent and produces identical output.
func (s *Segment) ScanWithStats(cols []string, pred *Pred, st *ScanStats, fn func(*Batch) error) error {
	return s.ScanWithStatsCtx(context.Background(), cols, pred, st, fn)
}

// ScanWithStatsCtx is ScanWithStats under a context: cancellation is checked
// before every block decode (and before the tail), so a canceled query stops
// within one storage block. The error wraps verr.ErrCanceled.
func (s *Segment) ScanWithStatsCtx(ctx context.Context, cols []string, pred *Pred, st *ScanStats, fn func(*Batch) error) error {
	return s.ScanZoneWithStatsCtx(ctx, cols, pred, nil, st, fn)
}

// resolveZone binds auxiliary zone predicates to column indexes.
func (s *Segment) resolveZone(plan *scanPlan, zone []Pred) error {
	for _, zp := range zone {
		ci := s.schema.ColIndex(zp.Col)
		if ci < 0 {
			return fmt.Errorf("colstore: zone predicate on unknown column %q", zp.Col)
		}
		plan.zone = append(plan.zone, zonePred{pred: zp, colIdx: ci})
	}
	return nil
}

// ScanZoneWithStatsCtx is ScanWithStatsCtx with auxiliary zone-map-only
// predicates: each zone pred may exclude sealed blocks via min/max stats but
// never filters surviving rows — callers keep those conjuncts as residual
// filters, so passing them here only prunes I/O (the multi-conjunct WHERE
// pushdown). Output is row-identical to the same scan without zone preds,
// minus the rows of excluded blocks, all of which fail the zone predicates.
func (s *Segment) ScanZoneWithStatsCtx(ctx context.Context, cols []string, pred *Pred, zone []Pred, st *ScanStats, fn func(*Batch) error) error {
	var local ScanStats
	if st == nil {
		st = &local
	}
	defer recordScanTelemetry(st)
	plan, err := s.planScan(cols, pred)
	if err != nil {
		return err
	}
	if err := s.resolveZone(plan, zone); err != nil {
		return err
	}
	scratch := idxScratch.Get().(*[]int)
	defer idxScratch.Put(scratch)
	// Without a predicate every block decodes whole, so one scratch batch
	// serves all blocks: fn must not retain delivered batches (see Scan).
	var reuse *Batch
	if pred == nil {
		reuse = NewBatch(plan.outSchema)
	}
	for bi := 0; bi < plan.nblocks; bi++ {
		if err := verr.Canceled(ctx.Err()); err != nil {
			return err
		}
		if plan.blockSkipped(s, pred, bi) {
			st.BlocksSkipped++ // zone-map skip
			continue
		}
		st.BlocksScanned++
		batch, err := s.decodeBlockRow(bi, plan, pred, st, scratch, reuse)
		if err != nil {
			return err
		}
		if batch.Len() == 0 {
			continue
		}
		st.RowsOut += batch.Len()
		if err := fn(batch); err != nil {
			return err
		}
	}
	if err := verr.Canceled(ctx.Err()); err != nil {
		return err
	}
	return s.scanTail(plan, pred, st, scratch, fn)
}

// scanTail delivers the unsealed tail rows (shared by both scan paths; the
// tail is a single in-memory batch, so it is always processed serially).
func (s *Segment) scanTail(plan *scanPlan, pred *Pred, st *ScanStats, scratch *[]int, fn func(*Batch) error) error {
	if s.tail.Len() == 0 {
		return nil
	}
	st.TailRows += s.tail.Len()
	batch, err := filterProject(s.tail, plan.colIdx, plan.outSchema, plan.predIdx, pred, scratch)
	if err != nil {
		return err
	}
	if batch.Len() > 0 {
		st.RowsOut += batch.Len()
		if err := fn(batch); err != nil {
			return err
		}
	}
	return nil
}

// ParScanWithStats is ScanWithStats with block-level parallelism: sealed
// blocks are decoded and filtered concurrently on the pool, while batches are
// delivered to fn strictly in block order — byte-for-byte the serial scan's
// output, including the merged ScanStats. A run-ahead window bounds decoded-
// but-undelivered blocks, so memory stays O(degree), not O(segment). With a
// nil pool or degree 1 it is exactly the serial path.
func (s *Segment) ParScanWithStats(cols []string, pred *Pred, pool *parallel.Pool, st *ScanStats, fn func(*Batch) error) error {
	return s.ParScanWithStatsCtx(context.Background(), cols, pred, pool, st, fn)
}

// ParScanWithStatsCtx is ParScanWithStats under a context. Cancellation is
// checked before each block is scheduled for decode and again at each
// in-order delivery, so a canceled scan stops issuing work within one block
// (the run-ahead window may still decode a few already-scheduled blocks,
// but none of them are delivered). The error wraps verr.ErrCanceled.
func (s *Segment) ParScanWithStatsCtx(ctx context.Context, cols []string, pred *Pred, pool *parallel.Pool, st *ScanStats, fn func(*Batch) error) error {
	return s.ParScanZoneWithStatsCtx(ctx, cols, pred, nil, pool, st, fn)
}

// ParScanZoneWithStatsCtx is ParScanWithStatsCtx with auxiliary zone-map
// predicates (see ScanZoneWithStatsCtx).
func (s *Segment) ParScanZoneWithStatsCtx(ctx context.Context, cols []string, pred *Pred, zone []Pred, pool *parallel.Pool, st *ScanStats, fn func(*Batch) error) error {
	if pool.Degree() <= 1 {
		return s.ScanZoneWithStatsCtx(ctx, cols, pred, zone, st, fn)
	}
	var local ScanStats
	if st == nil {
		st = &local
	}
	defer recordScanTelemetry(st)
	plan, err := s.planScan(cols, pred)
	if err != nil {
		return err
	}
	if err := s.resolveZone(plan, zone); err != nil {
		return err
	}
	// Zone-map pass first: skipping consults only block headers, so it stays
	// serial and the scheduled block list is deterministic.
	scan := make([]int, 0, plan.nblocks)
	for bi := 0; bi < plan.nblocks; bi++ {
		if plan.blockSkipped(s, pred, bi) {
			st.BlocksSkipped++
			continue
		}
		scan = append(scan, bi)
	}
	type blockOut struct {
		batch *Batch
		stats ScanStats
	}
	err = parallel.Ordered(pool, len(scan),
		func(i int) (blockOut, error) {
			if err := verr.Canceled(ctx.Err()); err != nil {
				return blockOut{}, err
			}
			var bs ScanStats
			bs.BlocksScanned = 1
			scratch := idxScratch.Get().(*[]int)
			// Parallel decode: blocks are delivered out of goroutine, so no
			// scratch-batch reuse here — each block owns its vectors.
			batch, err := s.decodeBlockRow(scan[i], plan, pred, &bs, scratch, nil)
			idxScratch.Put(scratch)
			if err != nil {
				return blockOut{}, err
			}
			bs.RowsOut = batch.Len()
			return blockOut{batch: batch, stats: bs}, nil
		},
		func(i int, out blockOut) error {
			if err := verr.Canceled(ctx.Err()); err != nil {
				return err
			}
			st.Add(out.stats)
			if out.batch.Len() == 0 {
				return nil
			}
			return fn(out.batch)
		})
	if err != nil {
		return err
	}
	if err := verr.Canceled(ctx.Err()); err != nil {
		return err
	}
	scratch := idxScratch.Get().(*[]int)
	defer idxScratch.Put(scratch)
	return s.scanTail(plan, pred, st, scratch, fn)
}

func (s *Segment) decodeBlockRow(bi int, plan *scanPlan, pred *Pred, st *ScanStats, scratch *[]int, reuse *Batch) (*Batch, error) {
	if pred == nil && reuse != nil {
		// Hot path: decode every projected column into the caller's scratch
		// batch, reused block over block.
		reuse.Reset()
		for i, ci := range plan.colIdx {
			st.BytesRead += len(s.sealed[ci][bi].data)
			if err := DecodeBlockInto(reuse.Cols[i], s.sealed[ci][bi].data); err != nil {
				return nil, err
			}
		}
		return reuse, nil
	}
	var matchIdx []int
	compressed := false
	if pred != nil {
		data := s.sealed[plan.predIdx][bi].data
		st.BytesRead += len(data)
		compressed = CompressedEvalEnabled()
		handled := false
		if compressed {
			var err error
			matchIdx, handled, err = MatchBlockCompressed(data, pred, *scratch)
			if err != nil {
				return nil, err
			}
			if handled {
				st.BlocksCompressed++
			}
		}
		if !handled {
			pv, err := DecodeBlock(data)
			if err != nil {
				return nil, err
			}
			matchIdx, err = pred.matchRowsInto(pv, *scratch)
			if err != nil {
				return nil, err
			}
		}
		*scratch = matchIdx // keep any growth for the next block
		if len(matchIdx) == 0 {
			return &Batch{Schema: plan.outSchema, Cols: emptyCols(plan.outSchema)}, nil
		}
	}
	// Late materialization pays off when few rows survive: DecodeBlockSel
	// touches only the selected rows, where the bulk decoder streams the
	// whole payload sequentially. The per-row selective decode loses its
	// edge well before half the block survives, so the strategy flips at a
	// quarter. Both produce identical bytes.
	lateMat := compressed && pred != nil && len(matchIdx)*4 < s.sealed[plan.predIdx][bi].rows
	out := &Batch{Schema: plan.outSchema, Cols: make([]*Vector, len(plan.colIdx))}
	for i, ci := range plan.colIdx {
		st.BytesRead += len(s.sealed[ci][bi].data)
		if lateMat {
			// Only the surviving rows decode (the predicate column included —
			// it was matched on its encoded form, or discarded right after
			// the eager match above).
			v := NewVector(plan.outSchema[i].Type, len(matchIdx))
			if err := DecodeBlockSel(v, s.sealed[ci][bi].data, matchIdx); err != nil {
				return nil, err
			}
			out.Cols[i] = v
			continue
		}
		v, err := DecodeBlock(s.sealed[ci][bi].data)
		if err != nil {
			return nil, err
		}
		if matchIdx != nil {
			v = v.Gather(matchIdx)
		}
		out.Cols[i] = v
	}
	return out, nil
}

func filterProject(b *Batch, colIdx []int, outSchema Schema, predIdx int, pred *Pred, scratch *[]int) (*Batch, error) {
	var matchIdx []int
	if pred != nil {
		var err error
		matchIdx, err = pred.matchRowsInto(b.Cols[predIdx], *scratch)
		if err != nil {
			return nil, err
		}
		*scratch = matchIdx
	}
	out := &Batch{Schema: outSchema, Cols: make([]*Vector, len(colIdx))}
	for i, ci := range colIdx {
		v := b.Cols[ci]
		if matchIdx != nil {
			v = v.Gather(matchIdx)
		} else {
			// No predicate: deliver a [0, len) view of the tail column.
			// Tail storage is append-only (new rows land past the view),
			// and scan consumers never mutate delivered batches, so the
			// view stays stable without copying the whole tail per scan.
			v = v.Slice(0, v.Len())
		}
		out.Cols[i] = v
	}
	return out, nil
}

func emptyCols(schema Schema) []*Vector {
	out := make([]*Vector, len(schema))
	for i, c := range schema {
		out[i] = NewVector(c.Type, 0)
	}
	return out
}

// ReadAll materializes the whole segment (projection cols, nil = all) into
// an owned batch (scan batches themselves are transient views).
func (s *Segment) ReadAll(cols []string) (*Batch, error) {
	var out *Batch
	err := s.Scan(cols, nil, func(b *Batch) error {
		if out == nil {
			out = NewBatch(b.Schema)
		}
		return out.AppendBatch(b)
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		schema := s.schema
		if cols != nil {
			schema, err = s.schema.Project(cols)
			if err != nil {
				return nil, err
			}
		}
		out = NewBatch(schema)
	}
	return out, nil
}

// Clone returns a copy-on-write snapshot of the segment for MVCC version
// publication: sealed block data is immutable after Seal, so clones share it
// (the per-column blockRef slices are copied with capacity capped at their
// length, forcing any later append — on either side — to reallocate rather
// than clobber the shared backing array), while the open tail is deep-copied
// because Append mutates it in place. After a clone, appending to one
// segment is invisible to the other.
func (s *Segment) Clone() *Segment {
	out := &Segment{
		schema:    s.schema,
		blockRows: s.blockRows,
		sealed:    make([][]blockRef, len(s.sealed)),
		rows:      s.rows,
	}
	for i, col := range s.sealed {
		out.sealed[i] = col[:len(col):len(col)]
	}
	out.tail = NewBatch(s.schema)
	// Same schema by construction, so this append cannot fail.
	_ = out.tail.AppendBatch(s.tail)
	if len(s.indexes) > 0 {
		// Trees are copy-on-write: share them, copy only the map, so an
		// Append on either side republishes into its own map.
		out.indexes = make(map[string]*indexTree, len(s.indexes))
		for c, t := range s.indexes {
			out.indexes[c] = t
		}
	}
	return out
}

// CompressedBytes reports the total size of sealed block data (the on-wire /
// on-disk footprint before file framing).
func (s *Segment) CompressedBytes() int {
	total := 0
	for _, col := range s.sealed {
		for _, ref := range col {
			total += len(ref.data)
		}
	}
	return total
}
