// Package colstore implements the columnar storage engine underneath the
// Vertica substitute: typed column vectors, light-weight compression
// encodings (plain, RLE, delta, dictionary), segment files with block-level
// min/max statistics, and checksummed on-disk persistence. A table in the
// database is stored as one or more Segments, each owned by a cluster node
// (the paper's "table segments", §3.1).
package colstore

import (
	"fmt"
)

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// TypeInvalid is the zero Type and never stored.
	TypeInvalid Type = iota
	// TypeInt64 is a 64-bit signed integer column.
	TypeInt64
	// TypeFloat64 is a 64-bit IEEE float column.
	TypeFloat64
	// TypeString is a variable-length UTF-8 string column.
	TypeString
	// TypeBool is a boolean column.
	TypeBool
)

// String returns the SQL-facing name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "INTEGER"
	case TypeFloat64:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(t))
	}
}

// ParseType maps a SQL type name to a Type; it accepts the common aliases.
func ParseType(s string) (Type, error) {
	switch s {
	case "INTEGER", "INT", "BIGINT", "integer", "int", "bigint":
		return TypeInt64, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "float", "double", "real", "numeric":
		return TypeFloat64, nil
	case "VARCHAR", "TEXT", "CHAR", "varchar", "text", "char":
		return TypeString, nil
	case "BOOLEAN", "BOOL", "boolean", "bool":
		return TypeBool, nil
	default:
		return TypeInvalid, fmt.Errorf("colstore: unknown type %q", s)
	}
}

// ColumnSchema is one column's name and type.
type ColumnSchema struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema []ColumnSchema

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Project returns a schema restricted to the given column names, in order.
func (s Schema) Project(names []string) (Schema, error) {
	out := make(Schema, 0, len(names))
	for _, n := range names {
		i := s.ColIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("colstore: unknown column %q", n)
		}
		out = append(out, s[i])
	}
	return out, nil
}

// Equal reports whether two schemas have identical columns in order.
func (s Schema) Equal(other Schema) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Vector is a typed column of values. Exactly one of the payload slices is
// used, selected by Type. The zero Vector is not usable; construct with
// NewVector.
type Vector struct {
	Type   Type
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
}

// NewVector returns an empty vector of the given type with capacity hint n.
func NewVector(t Type, n int) *Vector {
	v := &Vector{Type: t}
	switch t {
	case TypeInt64:
		v.Ints = make([]int64, 0, n)
	case TypeFloat64:
		v.Floats = make([]float64, 0, n)
	case TypeString:
		v.Strs = make([]string, 0, n)
	case TypeBool:
		v.Bools = make([]bool, 0, n)
	default:
		panic(fmt.Sprintf("colstore: NewVector of invalid type %v", t))
	}
	return v
}

// Reset truncates the vector to zero length, keeping the backing capacity so
// pooled vectors can be refilled without reallocating.
func (v *Vector) Reset() {
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Bools = v.Bools[:0]
}

// FloatVector wraps a float64 slice as a vector without copying.
func FloatVector(vals []float64) *Vector { return &Vector{Type: TypeFloat64, Floats: vals} }

// IntVector wraps an int64 slice as a vector without copying.
func IntVector(vals []int64) *Vector { return &Vector{Type: TypeInt64, Ints: vals} }

// StringVector wraps a string slice as a vector without copying.
func StringVector(vals []string) *Vector { return &Vector{Type: TypeString, Strs: vals} }

// BoolVector wraps a bool slice as a vector without copying.
func BoolVector(vals []bool) *Vector { return &Vector{Type: TypeBool, Bools: vals} }

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.Type {
	case TypeInt64:
		return len(v.Ints)
	case TypeFloat64:
		return len(v.Floats)
	case TypeString:
		return len(v.Strs)
	case TypeBool:
		return len(v.Bools)
	default:
		return 0
	}
}

// Value returns the i-th value boxed as any (int64, float64, string or bool).
func (v *Vector) Value(i int) any {
	switch v.Type {
	case TypeInt64:
		return v.Ints[i]
	case TypeFloat64:
		return v.Floats[i]
	case TypeString:
		return v.Strs[i]
	case TypeBool:
		return v.Bools[i]
	default:
		panic("colstore: Value on invalid vector")
	}
}

// AppendValue appends a boxed value; it must match the vector type, except
// that int64 values are accepted into float64 vectors (SQL numeric widening).
func (v *Vector) AppendValue(val any) error {
	switch v.Type {
	case TypeInt64:
		x, ok := val.(int64)
		if !ok {
			return fmt.Errorf("colstore: cannot append %T to INTEGER column", val)
		}
		v.Ints = append(v.Ints, x)
	case TypeFloat64:
		switch x := val.(type) {
		case float64:
			v.Floats = append(v.Floats, x)
		case int64:
			v.Floats = append(v.Floats, float64(x))
		default:
			return fmt.Errorf("colstore: cannot append %T to FLOAT column", val)
		}
	case TypeString:
		x, ok := val.(string)
		if !ok {
			return fmt.Errorf("colstore: cannot append %T to VARCHAR column", val)
		}
		v.Strs = append(v.Strs, x)
	case TypeBool:
		x, ok := val.(bool)
		if !ok {
			return fmt.Errorf("colstore: cannot append %T to BOOLEAN column", val)
		}
		v.Bools = append(v.Bools, x)
	default:
		return fmt.Errorf("colstore: append to invalid vector")
	}
	return nil
}

// AppendVector appends all of other (same type) to v.
func (v *Vector) AppendVector(other *Vector) error {
	if v.Type != other.Type {
		return fmt.Errorf("colstore: append %v vector to %v vector", other.Type, v.Type)
	}
	v.Ints = append(v.Ints, other.Ints...)
	v.Floats = append(v.Floats, other.Floats...)
	v.Strs = append(v.Strs, other.Strs...)
	v.Bools = append(v.Bools, other.Bools...)
	return nil
}

// AppendRange appends rows [lo, hi) of src, like AppendVector over a slice
// view but without materializing the view.
func (v *Vector) AppendRange(src *Vector, lo, hi int) error {
	if v.Type != src.Type {
		return fmt.Errorf("colstore: append %v range onto %v", src.Type, v.Type)
	}
	switch v.Type {
	case TypeInt64:
		v.Ints = append(v.Ints, src.Ints[lo:hi]...)
	case TypeFloat64:
		v.Floats = append(v.Floats, src.Floats[lo:hi]...)
	case TypeString:
		v.Strs = append(v.Strs, src.Strs[lo:hi]...)
	case TypeBool:
		v.Bools = append(v.Bools, src.Bools[lo:hi]...)
	}
	return nil
}

// Slice returns a view of rows [i, j) sharing the backing arrays.
func (v *Vector) Slice(i, j int) *Vector {
	out := &Vector{}
	v.SliceInto(out, i, j)
	return out
}

// SliceInto overwrites dst with a [i, j) view of v sharing the backing
// arrays — Slice without the allocation, for callers that reuse one view
// header across iterations.
func (v *Vector) SliceInto(dst *Vector, i, j int) {
	*dst = Vector{Type: v.Type}
	switch v.Type {
	case TypeInt64:
		dst.Ints = v.Ints[i:j]
	case TypeFloat64:
		dst.Floats = v.Floats[i:j]
	case TypeString:
		dst.Strs = v.Strs[i:j]
	case TypeBool:
		dst.Bools = v.Bools[i:j]
	}
}

// Gather returns a new vector of the rows selected by idx, in idx order.
func (v *Vector) Gather(idx []int) *Vector {
	out := NewVector(v.Type, len(idx))
	switch v.Type {
	case TypeInt64:
		for _, i := range idx {
			out.Ints = append(out.Ints, v.Ints[i])
		}
	case TypeFloat64:
		for _, i := range idx {
			out.Floats = append(out.Floats, v.Floats[i])
		}
	case TypeString:
		for _, i := range idx {
			out.Strs = append(out.Strs, v.Strs[i])
		}
	case TypeBool:
		for _, i := range idx {
			out.Bools = append(out.Bools, v.Bools[i])
		}
	}
	return out
}

// AppendGather appends src's rows selected by idx, in idx order. It is the
// appending form of Gather, used where the destination vector is reused
// across calls.
func (v *Vector) AppendGather(src *Vector, idx []int) error {
	if v.Type != src.Type {
		return fmt.Errorf("colstore: gather %v vector into %v vector", src.Type, v.Type)
	}
	switch v.Type {
	case TypeInt64:
		for _, i := range idx {
			v.Ints = append(v.Ints, src.Ints[i])
		}
	case TypeFloat64:
		for _, i := range idx {
			v.Floats = append(v.Floats, src.Floats[i])
		}
	case TypeString:
		for _, i := range idx {
			v.Strs = append(v.Strs, src.Strs[i])
		}
	case TypeBool:
		for _, i := range idx {
			v.Bools = append(v.Bools, src.Bools[i])
		}
	}
	return nil
}

// Batch is a set of equal-length column vectors with their schema: the unit
// of data flow through the executor, transfer paths and UDFs.
type Batch struct {
	Schema Schema
	Cols   []*Vector
}

// NewBatch allocates an empty batch for the schema.
func NewBatch(schema Schema) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Vector, len(schema))}
	for i, c := range schema {
		b.Cols[i] = NewVector(c.Type, 0)
	}
	return b
}

// NewBatchCap allocates an empty batch for the schema with row-capacity hint
// n on every column, so callers that know the final size append without
// regrowing.
func NewBatchCap(schema Schema, n int) *Batch {
	b := &Batch{Schema: schema, Cols: make([]*Vector, len(schema))}
	for i, c := range schema {
		b.Cols[i] = NewVector(c.Type, n)
	}
	return b
}

// Reset truncates every column to zero rows, keeping schema and capacity —
// the recycle point for pooled batches.
func (b *Batch) Reset() {
	for _, c := range b.Cols {
		c.Reset()
	}
}

// Len returns the row count (the length of the first column; 0 if empty).
func (b *Batch) Len() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Validate checks the batch invariants: schema/column agreement and equal
// column lengths.
func (b *Batch) Validate() error {
	if len(b.Cols) != len(b.Schema) {
		return fmt.Errorf("colstore: batch has %d columns, schema has %d", len(b.Cols), len(b.Schema))
	}
	n := -1
	for i, c := range b.Cols {
		if c.Type != b.Schema[i].Type {
			return fmt.Errorf("colstore: column %d is %v, schema says %v", i, c.Type, b.Schema[i].Type)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("colstore: column %d has %d rows, expected %d", i, c.Len(), n)
		}
	}
	return nil
}

// AppendRow appends one row of boxed values.
func (b *Batch) AppendRow(vals ...any) error {
	if len(vals) != len(b.Cols) {
		return fmt.Errorf("colstore: row has %d values, batch has %d columns", len(vals), len(b.Cols))
	}
	for i, v := range vals {
		if err := b.Cols[i].AppendValue(v); err != nil {
			return fmt.Errorf("column %q: %w", b.Schema[i].Name, err)
		}
	}
	return nil
}

// AppendBatch appends all rows of other; schemas must be equal.
func (b *Batch) AppendBatch(other *Batch) error {
	if !b.Schema.Equal(other.Schema) {
		return fmt.Errorf("colstore: schema mismatch in batch append")
	}
	for i := range b.Cols {
		if err := b.Cols[i].AppendVector(other.Cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// Row returns row i as boxed values.
func (b *Batch) Row(i int) []any {
	out := make([]any, len(b.Cols))
	for j, c := range b.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// AppendRange appends rows [lo, hi) of src column by column — the
// allocation-free equivalent of AppendBatch(src.Slice(lo, hi)).
func (b *Batch) AppendRange(src *Batch, lo, hi int) error {
	if len(b.Cols) != len(src.Cols) {
		return fmt.Errorf("colstore: append range of %d columns onto %d", len(src.Cols), len(b.Cols))
	}
	for i, c := range b.Cols {
		if err := c.AppendRange(src.Cols[i], lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// Slice returns a row range [i, j) view of the batch.
func (b *Batch) Slice(i, j int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]*Vector, len(b.Cols))}
	for k, c := range b.Cols {
		out.Cols[k] = c.Slice(i, j)
	}
	return out
}

// Project returns a batch with only the named columns (views, not copies).
func (b *Batch) Project(names []string) (*Batch, error) {
	schema, err := b.Schema.Project(names)
	if err != nil {
		return nil, err
	}
	out := &Batch{Schema: schema, Cols: make([]*Vector, len(names))}
	for i, n := range names {
		out.Cols[i] = b.Cols[b.Schema.ColIndex(n)]
	}
	return out, nil
}

// AppendGather appends src's rows selected by idx, in idx order — the
// selection-vector consumption point for filtered scans: instead of
// materializing an intermediate gathered batch, surviving rows append
// straight into the accumulating (often pooled) destination.
func (b *Batch) AppendGather(src *Batch, idx []int) error {
	if len(b.Cols) != len(src.Cols) {
		return fmt.Errorf("colstore: gather of %d columns onto %d", len(src.Cols), len(b.Cols))
	}
	for i, c := range b.Cols {
		if err := c.AppendGather(src.Cols[i], idx); err != nil {
			return err
		}
	}
	return nil
}

// Gather returns a new batch with the rows selected by idx.
func (b *Batch) Gather(idx []int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]*Vector, len(b.Cols))}
	for i, c := range b.Cols {
		out.Cols[i] = c.Gather(idx)
	}
	return out
}
