package colstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"verticadr/internal/colstore/index"
)

// This file attaches secondary B-tree indexes (internal/colstore/index) to
// segments and exposes the per-column statistics the cost-based planner
// feeds on. Row positions are append order — exactly the order Scan
// delivers rows — so Lookup + GatherRows reproduces a filtered scan byte
// for byte.

// indexTree aliases the tree type so segment.go stays free of the subpackage
// import.
type indexTree = index.Tree

// BuildIndex scans column col front to back and attaches a B-tree index
// over it, replacing any previous index on the same column. The tree covers
// every current row, sealed and tail alike.
func (s *Segment) BuildIndex(col string) error {
	if s.schema.ColIndex(col) < 0 {
		return fmt.Errorf("colstore: index on unknown column %q", col)
	}
	var b index.Builder
	row := uint32(0)
	err := s.Scan([]string{col}, nil, func(batch *Batch) error {
		v := batch.Cols[0]
		for i, n := 0, v.Len(); i < n; i++ {
			b.Add(v.Value(i), row)
			row++
		}
		return nil
	})
	if err != nil {
		return err
	}
	tree, err := b.Build()
	if err != nil {
		return err
	}
	if s.indexes == nil {
		s.indexes = map[string]*index.Tree{}
	}
	s.indexes[col] = tree
	s.invalidateStats() // NDV becomes exact through the tree
	return nil
}

// Index returns the column's index tree, or nil when none is attached.
func (s *Segment) Index(col string) *index.Tree { return s.indexes[col] }

// SetIndex attaches a prebuilt tree (checkpoint load). The tree must cover
// exactly the segment's current rows; a mismatch reports an error so
// recovery can fall back to rebuilding.
func (s *Segment) SetIndex(col string, tree *index.Tree) error {
	if s.schema.ColIndex(col) < 0 {
		return fmt.Errorf("colstore: index on unknown column %q", col)
	}
	if tree.Rows() != s.rows {
		return fmt.Errorf("colstore: index covers %d rows, segment has %d", tree.Rows(), s.rows)
	}
	if s.indexes == nil {
		s.indexes = map[string]*index.Tree{}
	}
	s.indexes[col] = tree
	s.invalidateStats()
	return nil
}

// DropIndex detaches the column's index (no-op when absent).
func (s *Segment) DropIndex(col string) {
	delete(s.indexes, col)
	s.invalidateStats()
}

// IndexedColumns lists the indexed columns in name order.
func (s *Segment) IndexedColumns() []string {
	out := make([]string, 0, len(s.indexes))
	for c := range s.indexes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// maintainIndexes inserts a just-appended batch's rows into every attached
// tree. base is the segment's row count before the append. Insert is
// copy-on-write, so clones sharing the old trees keep their view.
func (s *Segment) maintainIndexes(b *Batch, base int) error {
	for col, tree := range s.indexes {
		ci := s.schema.ColIndex(col)
		v := b.Cols[ci]
		for i, n := 0, v.Len(); i < n; i++ {
			var err error
			tree, err = tree.Insert(v.Value(i), uint32(base+i))
			if err != nil {
				return err
			}
		}
		s.indexes[col] = tree
	}
	return nil
}

// IndexLookup serves a predicate from the column's index: matching row
// positions in ascending (scan) order. handled is false when no index
// exists or the operator/value cannot be index-served.
func (s *Segment) IndexLookup(pred *Pred) (rows []uint32, handled bool) {
	tree := s.indexes[pred.Col]
	if tree == nil {
		return nil, false
	}
	return tree.Lookup(index.Op(pred.Op), pred.Val)
}

// IndexLookupRange serves a bounded range — a lower-bound predicate and an
// upper-bound predicate over the same column — from that column's index in
// one tree walk. handled is false when no index exists, the predicates name
// different columns, or the tree cannot serve the operators/values.
func (s *Segment) IndexLookupRange(lo, hi *Pred) (rows []uint32, handled bool) {
	if lo.Col != hi.Col {
		return nil, false
	}
	tree := s.indexes[lo.Col]
	if tree == nil {
		return nil, false
	}
	return tree.LookupRange(index.Op(lo.Op), lo.Val, index.Op(hi.Op), hi.Val)
}

// GatherRows materializes the projected columns of the given row positions
// (ascending, as IndexLookup returns them) into one owned batch, decoding
// only the blocks that hold selected rows — the O(log n + k) access path.
// Stats accounting mirrors a scan: untouched sealed blocks count as
// skipped, touched ones as scanned.
func (s *Segment) GatherRows(cols []string, rowids []uint32, st *ScanStats) (*Batch, error) {
	var local ScanStats
	if st == nil {
		st = &local
	}
	defer recordScanTelemetry(st)
	plan, err := s.planScan(cols, nil)
	if err != nil {
		return nil, err
	}
	out := &Batch{Schema: plan.outSchema, Cols: make([]*Vector, len(plan.colIdx))}
	for i := range out.Cols {
		out.Cols[i] = NewVector(plan.outSchema[i].Type, len(rowids))
	}
	if len(plan.colIdx) == 0 {
		return out, nil
	}
	scratch := idxScratch.Get().(*[]int)
	defer idxScratch.Put(scratch)
	sel := (*scratch)[:0]
	pos, start := 0, 0
	for bi := 0; bi < plan.nblocks; bi++ {
		rowsInBlock := s.sealed[plan.colIdx[0]][bi].rows
		end := start + rowsInBlock
		sel = sel[:0]
		for pos < len(rowids) && int(rowids[pos]) < end {
			if int(rowids[pos]) < start {
				return nil, fmt.Errorf("colstore: gather rowids not ascending")
			}
			sel = append(sel, int(rowids[pos])-start)
			pos++
		}
		if len(sel) == 0 {
			st.BlocksSkipped++
			start = end
			continue
		}
		st.BlocksScanned++
		for i, ci := range plan.colIdx {
			st.BytesRead += len(s.sealed[ci][bi].data)
			if err := DecodeBlockSel(out.Cols[i], s.sealed[ci][bi].data, sel); err != nil {
				return nil, err
			}
		}
		start = end
	}
	*scratch = sel
	// Remaining positions land in the unsealed tail.
	for ; pos < len(rowids); pos++ {
		ti := int(rowids[pos]) - start
		if ti < 0 || ti >= s.tail.Len() {
			return nil, fmt.Errorf("colstore: gather row %d out of range (%d rows)", rowids[pos], s.rows)
		}
		st.TailRows++
		for i, ci := range plan.colIdx {
			if err := out.Cols[i].AppendRange(s.tail.Cols[ci], ti, ti+1); err != nil {
				return nil, err
			}
		}
	}
	st.RowsOut += len(rowids)
	return out, nil
}

// ColumnStats summarizes one column for cardinality estimation.
type ColumnStats struct {
	Rows     int     // segment row count
	HasRange bool    // Min/Max valid (numeric column, no all-NaN gaps)
	Min, Max float64 // zone-map range over sealed blocks + tail
	// NDV estimates the distinct-value count: exact from an attached index,
	// otherwise summed per-block (dictionary sizes, RLE run counts, plain
	// row counts) and capped at Rows — an overestimate, which biases the
	// planner toward assuming selective equality predicates are selective.
	NDV int
}

// ColumnStats derives the planner's per-column statistics from block
// metadata (and the index when one is attached) without decoding payloads,
// except for a light header walk of RLE/dict blocks. Results are memoized
// per segment until the next mutation, so repeated plans against the same
// published version pay the derivation once.
func (s *Segment) ColumnStats(col string) (ColumnStats, error) {
	s.statsMu.Lock()
	if st, ok := s.statsCache[col]; ok {
		s.statsMu.Unlock()
		return st, nil
	}
	s.statsMu.Unlock()
	st, err := s.columnStatsSlow(col)
	if err != nil {
		return st, err
	}
	s.statsMu.Lock()
	if s.statsCache == nil {
		s.statsCache = map[string]ColumnStats{}
	}
	s.statsCache[col] = st
	s.statsMu.Unlock()
	return st, nil
}

func (s *Segment) columnStatsSlow(col string) (ColumnStats, error) {
	ci := s.schema.ColIndex(col)
	if ci < 0 {
		return ColumnStats{}, fmt.Errorf("colstore: stats on unknown column %q", col)
	}
	st := ColumnStats{Rows: s.rows}
	first := true
	for _, ref := range s.sealed[ci] {
		if !ref.hasStats {
			first = false
			st.HasRange = false
			continue
		}
		if first {
			st.HasRange, st.Min, st.Max = true, ref.min, ref.max
			first = false
		} else if st.HasRange {
			if ref.min < st.Min {
				st.Min = ref.min
			}
			if ref.max > st.Max {
				st.Max = ref.max
			}
		}
	}
	if s.tail.Len() > 0 {
		ok, mn, mx := vectorStats(s.tail.Cols[ci])
		switch {
		case !ok:
			st.HasRange = false
		case first:
			st.HasRange, st.Min, st.Max = true, mn, mx
		case st.HasRange:
			if mn < st.Min {
				st.Min = mn
			}
			if mx > st.Max {
				st.Max = mx
			}
		}
	}
	if tree := s.indexes[col]; tree != nil {
		st.NDV = tree.DistinctKeys()
		return st, nil
	}
	ndv := 0
	for _, ref := range s.sealed[ci] {
		ndv += blockNDV(ref)
	}
	// Tail rows: count exactly (the tail is at most one block).
	if s.tail.Len() > 0 {
		ndv += tailDistinct(s.tail.Cols[ci])
	}
	if ndv > s.rows {
		ndv = s.rows
	}
	st.NDV = ndv
	return st, nil
}

// tailDistinct counts a tail vector's distinct values through typed maps —
// the boxed fallback costs an interface allocation and a typehash per row.
// Distinctness follows Go equality per element type, identical to the boxed
// comparison it replaces: NaNs never coincide, ±0.0 always do.
func tailDistinct(v *Vector) int {
	n := v.Len()
	hint := min(n, 256)
	switch v.Type {
	case TypeInt64:
		seen := make(map[int64]struct{}, hint)
		for _, x := range v.Ints {
			seen[x] = struct{}{}
		}
		return len(seen)
	case TypeFloat64:
		seen := make(map[float64]struct{}, hint)
		nans := 0
		for _, x := range v.Floats {
			if x != x {
				nans++ // NaN is distinct from everything, itself included
				continue
			}
			seen[x] = struct{}{}
		}
		return len(seen) + nans
	case TypeString:
		seen := make(map[string]struct{}, hint)
		for _, x := range v.Strs {
			seen[x] = struct{}{}
		}
		return len(seen)
	case TypeBool:
		seen := [2]bool{}
		for _, x := range v.Bools {
			if x {
				seen[1] = true
			} else {
				seen[0] = true
			}
		}
		ndv := 0
		for _, ok := range seen {
			if ok {
				ndv++
			}
		}
		return ndv
	}
	seen := make(map[any]struct{}, hint)
	for i := 0; i < n; i++ {
		seen[v.Value(i)] = struct{}{}
	}
	return len(seen)
}

// blockNDV estimates one block's distinct count from its header: exact-ish
// for dictionary blocks (dict size) and RLE (run count bounds distinct),
// the row count otherwise.
func blockNDV(ref blockRef) int {
	typ, enc, n, payload, ok := splitBlockHeader(ref.data)
	if !ok {
		return ref.rows
	}
	switch enc {
	case EncDict:
		dictLen, m := binary.Uvarint(payload)
		if m <= 0 {
			return ref.rows
		}
		return int(dictLen)
	case EncRLE:
		runs := 0
		rest := payload
		rows := 0
		for rows < n && len(rest) > 0 {
			runLen, m := binary.Uvarint(rest)
			if m <= 0 {
				return ref.rows
			}
			rest = rest[m:]
			// Skip the run's value.
			switch typ {
			case TypeInt64, TypeFloat64:
				if len(rest) < 8 {
					return ref.rows
				}
				rest = rest[8:]
			case TypeString:
				sl, sm := binary.Uvarint(rest)
				if sm <= 0 || uint64(len(rest)-sm) < sl {
					return ref.rows
				}
				rest = rest[sm+int(sl):]
			case TypeBool:
				if len(rest) < 1 {
					return ref.rows
				}
				rest = rest[1:]
			default:
				return ref.rows
			}
			rows += int(runLen)
			runs++
		}
		return runs
	default:
		return ref.rows
	}
}
