package colstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vectorsEqual(a, b *Vector) bool {
	if a.Type != b.Type || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		switch a.Type {
		case TypeFloat64:
			if math.Float64bits(a.Floats[i]) != math.Float64bits(b.Floats[i]) {
				return false
			}
		default:
			if a.Value(i) != b.Value(i) {
				return false
			}
		}
	}
	return true
}

func TestRoundTripAllEncodings(t *testing.T) {
	vectors := map[string]*Vector{
		"ints":    IntVector([]int64{1, 1, 1, 5, 5, -3, math.MaxInt64, math.MinInt64}),
		"floats":  FloatVector([]float64{1.5, 1.5, -0.25, math.Inf(1), math.Inf(-1), 0}),
		"strings": StringVector([]string{"a", "a", "bb", "", "ccc", "a"}),
		"bools":   BoolVector([]bool{true, true, false, true}),
		"empty":   NewVector(TypeInt64, 0),
	}
	for name, v := range vectors {
		encs := []Encoding{EncPlain, EncRLE}
		if v.Type == TypeInt64 {
			encs = append(encs, EncDelta)
		}
		if v.Type == TypeString {
			encs = append(encs, EncDict)
		}
		for _, enc := range encs {
			data, err := EncodeBlock(v, enc)
			if err != nil {
				t.Fatalf("%s/%v encode: %v", name, enc, err)
			}
			got, err := DecodeBlock(data)
			if err != nil {
				t.Fatalf("%s/%v decode: %v", name, enc, err)
			}
			if !vectorsEqual(v, got) {
				t.Fatalf("%s/%v round trip mismatch", name, enc)
			}
		}
	}
}

func TestEncodingTypeRestrictions(t *testing.T) {
	if _, err := EncodeBlock(FloatVector([]float64{1}), EncDelta); err == nil {
		t.Fatal("DELTA on floats should fail")
	}
	if _, err := EncodeBlock(IntVector([]int64{1}), EncDict); err == nil {
		t.Fatal("DICT on ints should fail")
	}
}

func TestBestEncodingHeuristics(t *testing.T) {
	// Long runs → RLE.
	runs := make([]int64, 1000)
	for i := range runs {
		runs[i] = int64(i / 100)
	}
	if got := BestEncoding(IntVector(runs)); got != EncRLE {
		t.Fatalf("runs: got %v want RLE", got)
	}
	// Sorted-ish ints → DELTA.
	sorted := make([]int64, 1000)
	for i := range sorted {
		sorted[i] = int64(i * 3)
	}
	if got := BestEncoding(IntVector(sorted)); got != EncDelta {
		t.Fatalf("sorted: got %v want DELTA", got)
	}
	// Low-cardinality strings → DICT.
	strs := make([]string, 1000)
	for i := range strs {
		strs[i] = []string{"x", "y", "z"}[i%3]
	}
	if got := BestEncoding(StringVector(strs)); got != EncRLE && got != EncDict {
		t.Fatalf("low-card strings: got %v", got)
	}
	// Random floats → PLAIN.
	r := rand.New(rand.NewSource(1))
	fs := make([]float64, 1000)
	for i := range fs {
		fs[i] = r.NormFloat64()
	}
	if got := BestEncoding(FloatVector(fs)); got != EncPlain {
		t.Fatalf("random floats: got %v want PLAIN", got)
	}
}

func TestBestEncodingCompresses(t *testing.T) {
	runs := make([]int64, 10000)
	for i := range runs {
		runs[i] = int64(i / 1000)
	}
	v := IntVector(runs)
	plain, _ := EncodeBlock(v, EncPlain)
	best, _ := EncodeBlock(v, BestEncoding(v))
	if len(best)*10 > len(plain) {
		t.Fatalf("RLE should compress >10x here: plain=%d best=%d", len(plain), len(best))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeBlock([]byte{}); err == nil {
		t.Fatal("empty block should fail")
	}
	if _, err := DecodeBlock([]byte{byte(TypeInt64), 99, 1}); err == nil {
		t.Fatal("unknown encoding should fail")
	}
	good, _ := EncodeBlock(IntVector([]int64{1, 2, 3}), EncPlain)
	if _, err := DecodeBlock(good[:len(good)-4]); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

// Property: every encoding round-trips arbitrary int64 data.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		v := IntVector(vals)
		for _, enc := range []Encoding{EncPlain, EncRLE, EncDelta} {
			data, err := EncodeBlock(v, enc)
			if err != nil {
				return false
			}
			got, err := DecodeBlock(data)
			if err != nil || !vectorsEqual(v, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: string encodings round-trip arbitrary strings (incl. binary).
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		v := StringVector(vals)
		for _, enc := range []Encoding{EncPlain, EncRLE, EncDict} {
			data, err := EncodeBlock(v, enc)
			if err != nil {
				return false
			}
			got, err := DecodeBlock(data)
			if err != nil || !vectorsEqual(v, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: float encodings round-trip bit-exactly, including NaN.
func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(vals []float64, nan bool) bool {
		if nan && len(vals) > 0 {
			vals[0] = math.NaN()
		}
		v := FloatVector(vals)
		for _, enc := range []Encoding{EncPlain, EncRLE} {
			data, err := EncodeBlock(v, enc)
			if err != nil {
				return false
			}
			got, err := DecodeBlock(data)
			if err != nil || !vectorsEqual(v, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: BestEncoding never errors and always round-trips.
func TestQuickBestEncodingRoundTrip(t *testing.T) {
	f := func(ints []int64, strs []string, bools []bool) bool {
		for _, v := range []*Vector{IntVector(ints), StringVector(strs), BoolVector(bools)} {
			data, err := EncodeBlock(v, BestEncoding(v))
			if err != nil {
				return false
			}
			got, err := DecodeBlock(data)
			if err != nil || !vectorsEqual(v, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
