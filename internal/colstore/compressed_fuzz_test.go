package colstore

import (
	"math"
	"testing"
)

// fuzzPred deterministically derives a predicate for a column of the given
// type from a selector byte. The value palettes mix in-domain values (exact
// half-integers, NaN, ±0.0, dictionary-shaped strings, the empty string) with
// cross-type values so the fuzzer also exercises the compare-error path.
func fuzzPred(typ Type, sel uint8) *Pred {
	ops := []CompareOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	op := ops[int(sel)%len(ops)]
	var vals []any
	switch typ {
	case TypeInt64:
		vals = []any{int64(0), int64(7), int64(-20), int64(math.MaxInt64), 1.5, "zz"}
	case TypeFloat64:
		vals = []any{0.0, math.Copysign(0, -1), math.NaN(), 2.5, math.Inf(1), int64(3), true}
	case TypeString:
		vals = []any{"", "red", "green", "m", int64(1)}
	case TypeBool:
		vals = []any{true, false, int64(0)}
	}
	return &Pred{Col: "c", Op: op, Val: vals[int(sel/6)%len(vals)]}
}

// FuzzCompressedScanEquivalence is the block-level equivalence harness for
// compressed execution: for an arbitrary encoded block and predicate, the
// compressed matcher (predicates evaluated per-run / per-dictionary-code)
// and the eager path (full decode, then per-row match) must agree on the
// selected row set — or both must reject the block. On top of the match set,
// the selective decoder must materialize exactly what decode-then-gather
// does, and must reject corrupt bytes with the eager decoder's error.
//
// Blocks come from two shapes of the same input bytes: a valid encode of a
// vector derived from the bytes (rawMode=false), and the raw bytes treated
// as a block image (rawMode=true), which explores the corrupt-input surface.
func FuzzCompressedScanEquivalence(f *testing.F) {
	// Seed the corpus with the shapes the difftest generator produces:
	// run-length data straddling block boundaries, NaN/-0.0 float runs,
	// low-cardinality alternating strings (dictionary), empty strings, and a
	// couple of corrupt images.
	f.Add(uint8(0), uint8(1), uint8(0), false, []byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Add(uint8(1), uint8(1), uint8(2), false, []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1, 0x80, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(2), uint8(2), uint8(0), false, []byte{3, 'r', 'e', 'd', 0, 3, 'r', 'e', 'd', 4, 'b', 'l', 'u', 'e'})
	f.Add(uint8(3), uint8(1), uint8(3), false, []byte{1, 1, 1, 0, 0, 1})
	iv := IntVector([]int64{4, 4, 4, 4, -1, -1})
	if blk, err := EncodeBlock(iv, EncRLE); err == nil {
		f.Add(uint8(0), uint8(0), uint8(6), true, blk)
		if len(blk) > 4 {
			f.Add(uint8(0), uint8(0), uint8(6), true, blk[:len(blk)-2]) // truncated RLE value
		}
	}
	sv := StringVector([]string{"a", "", "a", "bb"})
	if blk, err := EncodeBlock(sv, EncDict); err == nil {
		f.Add(uint8(2), uint8(0), uint8(12), true, blk)
	}
	f.Add(uint8(0), uint8(0), uint8(0), true, []byte{byte(TypeString), byte(EncDict), 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, typSel, encSel, predSel uint8, rawMode bool, data []byte) {
		typ := []Type{TypeInt64, TypeFloat64, TypeString, TypeBool}[typSel%4]
		var blk []byte
		if rawMode {
			blk = data
			if len(blk) == 0 {
				blk = []byte{0}
			}
			switch Type(blk[0]) {
			case TypeInt64, TypeFloat64, TypeString, TypeBool:
				typ = Type(blk[0]) // predicate in the block's own domain
			}
		} else {
			v := vectorFromBytes(typ, data)
			if v.Len() > MaxBlockRows {
				t.Skip("larger than any real block")
			}
			encs := []Encoding{EncPlain, EncRLE, BestEncoding(v)}
			if typ == TypeInt64 {
				encs = append(encs, EncDelta)
			}
			if typ == TypeString {
				encs = append(encs, EncDict)
			}
			var err error
			blk, err = EncodeBlock(v, encs[int(encSel)%len(encs)])
			if err != nil {
				t.Fatalf("encode %v: %v", typ, err)
			}
		}
		pred := fuzzPred(typ, predSel)

		// Eager reference: full decode, then per-row match.
		refV, refDecErr := DecodeBlock(blk)
		var refIdx []int
		refErr := refDecErr
		if refErr == nil {
			refIdx, refErr = pred.matchRowsInto(refV, nil)
		}

		gotIdx, handled, gotErr := MatchBlockCompressed(blk, pred, nil)
		if handled {
			if (gotErr != nil) != (refErr != nil) {
				t.Fatalf("compressed match error disagrees with eager path\n  compressed: %v\n  eager:      %v\n  block: %x", gotErr, refErr, blk)
			}
			if gotErr == nil {
				if len(gotIdx) != len(refIdx) {
					t.Fatalf("compressed matched %d rows, eager %d (pred %+v)", len(gotIdx), len(refIdx), pred)
				}
				for i := range gotIdx {
					if gotIdx[i] != refIdx[i] {
						t.Fatalf("match index %d: compressed %d, eager %d", i, gotIdx[i], refIdx[i])
					}
				}
			}
		}

		// Selective decode vs decode-then-gather, on the eagerly-matched rows
		// (the exact set the scan path materializes late).
		out := NewVector(typ, 0)
		if refDecErr == nil && Type(blk[0]) == typ {
			sel := refIdx
			if refErr != nil {
				// Match failed (cross-type compare); use a stride instead.
				sel = nil
				for i := 0; i < refV.Len(); i += 2 {
					sel = append(sel, i)
				}
			}
			if err := DecodeBlockSel(out, blk, sel); err != nil {
				t.Fatalf("selective decode rejected a block the eager decoder accepted: %v", err)
			}
			if want := refV.Gather(sel); !vectorsEqual(want, out) {
				t.Fatalf("selective decode of %d rows differs from decode+gather", len(sel))
			}
		} else if refDecErr != nil && Type(blk[0]) == typ {
			selErr := DecodeBlockSel(out, blk, nil)
			if selErr == nil {
				t.Fatalf("selective decoder accepted a block the eager decoder rejected: %v", refDecErr)
			}
			if selErr.Error() != refDecErr.Error() {
				t.Fatalf("corrupt-block error diverges\n  selective: %v\n  eager:     %v", selErr, refDecErr)
			}
		}
	})
}
