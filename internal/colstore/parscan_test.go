package colstore

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"verticadr/internal/faults"
	"verticadr/internal/parallel"
)

// randomSegment builds a segment with all four column types, many small
// sealed blocks, and an unsealed tail.
func randomSegment(t testing.TB, seed int64, rows, blockRows int) *Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := Schema{
		{Name: "id", Type: TypeInt64},
		{Name: "v", Type: TypeFloat64},
		{Name: "tag", Type: TypeString},
		{Name: "ok", Type: TypeBool},
	}
	seg := NewSegment(schema, blockRows)
	batch := NewBatch(schema)
	for i := 0; i < rows; i++ {
		err := batch.AppendRow(
			int64(rng.Intn(1000)),
			float64(rng.Intn(500)),
			fmt.Sprintf("t%d", rng.Intn(23)),
			rng.Intn(2) == 0,
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(batch); err != nil {
		t.Fatal(err)
	}
	// Leave a tail: do not Seal.
	return seg
}

// collectScan materializes a scan into one batch plus its stats.
func collectScan(t testing.TB, seg *Segment, cols []string, pred *Pred, pool *parallel.Pool) (*Batch, ScanStats) {
	t.Helper()
	var st ScanStats
	var out *Batch
	consume := func(b *Batch) error {
		if out == nil {
			out = NewBatch(b.Schema)
		}
		return out.AppendBatch(b)
	}
	var err error
	if pool == nil {
		err = seg.ScanWithStats(cols, pred, &st, consume)
	} else {
		err = seg.ParScanWithStats(cols, pred, pool, &st, consume)
	}
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		schema := seg.Schema()
		if cols != nil {
			schema, err = schema.Project(cols)
			if err != nil {
				t.Fatal(err)
			}
		}
		out = NewBatch(schema)
	}
	return out, st
}

// batchesEqual compares schema and every value bitwise (floats by bits).
func batchesEqual(a, b *Batch) error {
	if !a.Schema.Equal(b.Schema) {
		return fmt.Errorf("schema mismatch: %v vs %v", a.Schema, b.Schema)
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("row count %d vs %d", a.Len(), b.Len())
	}
	for c := range a.Cols {
		av, bv := a.Cols[c], b.Cols[c]
		for i := 0; i < av.Len(); i++ {
			switch av.Type {
			case TypeFloat64:
				if math.Float64bits(av.Floats[i]) != math.Float64bits(bv.Floats[i]) {
					return fmt.Errorf("col %d row %d: %v vs %v", c, i, av.Floats[i], bv.Floats[i])
				}
			default:
				if av.Value(i) != bv.Value(i) {
					return fmt.Errorf("col %d row %d: %v vs %v", c, i, av.Value(i), bv.Value(i))
				}
			}
		}
	}
	return nil
}

func TestParScanMatchesSerial(t *testing.T) {
	seg := randomSegment(t, 1, 5000, 64)
	preds := []*Pred{
		nil,
		{Col: "id", Op: OpLT, Val: int64(200)},
		{Col: "v", Op: OpGE, Val: float64(250)},
		{Col: "v", Op: OpEQ, Val: int64(100)}, // cross-type numeric
		{Col: "tag", Op: OpEQ, Val: "t3"},
		{Col: "ok", Op: OpEQ, Val: true},
		{Col: "id", Op: OpGT, Val: int64(5000)}, // all blocks zone-map skipped
	}
	projections := [][]string{nil, {"id"}, {"v", "tag"}, {"tag", "id", "ok"}}
	for pi, pred := range preds {
		for ci, cols := range projections {
			want, wantStats := collectScan(t, seg, cols, pred, nil)
			for _, deg := range []int{1, 2, 4, 8} {
				got, gotStats := collectScan(t, seg, cols, pred, parallel.NewPool(deg))
				if err := batchesEqual(want, got); err != nil {
					t.Fatalf("pred %d cols %d degree %d: %v", pi, ci, deg, err)
				}
				if gotStats != wantStats {
					t.Fatalf("pred %d cols %d degree %d: stats %+v vs %+v", pi, ci, deg, gotStats, wantStats)
				}
			}
		}
	}
}

func TestParScanSealedOnly(t *testing.T) {
	seg := randomSegment(t, 2, 4096, 64) // rows divide evenly: no tail
	if seg.tail.Len() != 0 {
		t.Fatalf("expected empty tail, got %d rows", seg.tail.Len())
	}
	want, _ := collectScan(t, seg, nil, nil, nil)
	got, _ := collectScan(t, seg, nil, nil, parallel.NewPool(4))
	if err := batchesEqual(want, got); err != nil {
		t.Fatal(err)
	}
}

func TestParScanOrderedDelivery(t *testing.T) {
	// Sequential ids: with no predicate the delivered stream must be exactly
	// 0..n-1 in order, proving block order survives parallel decode.
	schema := Schema{{Name: "id", Type: TypeInt64}}
	seg := NewSegment(schema, 32)
	batch := NewBatch(schema)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := batch.AppendRow(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(batch); err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	err := seg.ParScanWithStats(nil, nil, parallel.NewPool(8), nil, func(b *Batch) error {
		for _, id := range b.Cols[0].Ints {
			if id != next {
				return fmt.Errorf("got id %d, want %d", id, next)
			}
			next++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("delivered %d rows, want %d", next, n)
	}
}

func TestParScanConsumerError(t *testing.T) {
	seg := randomSegment(t, 3, 2000, 32)
	halt := errors.New("halt")
	calls := 0
	err := seg.ParScanWithStats(nil, nil, parallel.NewPool(4), nil, func(b *Batch) error {
		calls++
		if calls == 3 {
			return halt
		}
		return nil
	})
	if !errors.Is(err, halt) {
		t.Fatalf("err %v, want halt", err)
	}
}

func TestParScanUnknownPredColumn(t *testing.T) {
	seg := randomSegment(t, 4, 100, 32)
	err := seg.ParScanWithStats(nil, &Pred{Col: "nope", Op: OpEQ, Val: int64(1)}, parallel.NewPool(4), nil, func(*Batch) error { return nil })
	if err == nil {
		t.Fatal("expected error for unknown predicate column")
	}
}

// TestChaosParScanDelayInjection stalls random parallel tasks via the fault
// injector and asserts the parallel scan still produces byte-identical
// results and stats: stragglers must not reorder or drop blocks.
func TestChaosParScanDelayInjection(t *testing.T) {
	seg := randomSegment(t, 5, 4000, 64)
	pred := &Pred{Col: "v", Op: OpLT, Val: float64(300)}
	want, wantStats := collectScan(t, seg, []string{"id", "v", "tag"}, pred, nil)

	in := faults.New(42)
	in.MustArm(faults.Rule{Site: parallel.SiteTask, Kind: faults.Delay, Prob: 0.25, Delay: 300 * time.Microsecond})
	faults.Install(in)
	defer faults.Install(nil)

	for _, deg := range []int{2, 4, 8} {
		got, gotStats := collectScan(t, seg, []string{"id", "v", "tag"}, pred, parallel.NewPool(deg))
		if err := batchesEqual(want, got); err != nil {
			t.Fatalf("degree %d under delay injection: %v", deg, err)
		}
		if gotStats != wantStats {
			t.Fatalf("degree %d under delay injection: stats %+v vs %+v", deg, gotStats, wantStats)
		}
	}
	var fired bool
	for _, s := range in.Stats() {
		if s.Site == parallel.SiteTask && s.Fires > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("chaos profile never fired — test exercised nothing")
	}
}

// TestChaosParScanErrorInjection arms an error rule and checks the scan
// surfaces the injected failure instead of returning partial results.
func TestChaosParScanErrorInjection(t *testing.T) {
	seg := randomSegment(t, 6, 4000, 64)
	in := faults.New(7)
	in.MustArm(faults.Rule{Site: parallel.SiteTask, Kind: faults.Error, EveryN: 10})
	faults.Install(in)
	defer faults.Install(nil)
	err := seg.ParScanWithStats(nil, nil, parallel.NewPool(4), nil, func(*Batch) error { return nil })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err %v, want injected", err)
	}
}
