package colstore

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func indexTestSegment(t *testing.T, rng *rand.Rand, rows, blockRows int) *Segment {
	t.Helper()
	schema := Schema{
		{Name: "id", Type: TypeInt64},
		{Name: "x", Type: TypeFloat64},
		{Name: "s", Type: TypeString},
		{Name: "flag", Type: TypeBool},
	}
	seg := NewSegment(schema, blockRows)
	b := NewBatch(schema)
	for i := 0; i < rows; i++ {
		x := math.Round(rng.Float64()*400) / 4
		if rng.Intn(40) == 0 {
			x = math.NaN()
		}
		if err := b.AppendRow(int64(rng.Intn(200)-100), x, string(rune('a'+rng.Intn(8))), rng.Intn(2) == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	return seg
}

// scanFiltered is the reference: a plain filtered scan materialized whole.
func scanFiltered(t *testing.T, seg *Segment, cols []string, pred *Pred) *Batch {
	t.Helper()
	var out *Batch
	err := seg.ScanWithStats(cols, pred, nil, func(b *Batch) error {
		if out == nil {
			out = NewBatch(b.Schema)
		}
		return out.AppendBatch(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		sch, _ := seg.Schema().Project(cols)
		out = NewBatch(sch)
	}
	return out
}

// TestIndexLookupMatchesScan pins the core equivalence: IndexLookup +
// GatherRows delivers the same rows in the same order as a filtered scan,
// for every operator, on every column type, NaN rows included.
func TestIndexLookupMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seg := indexTestSegment(t, rng, 10000, 512)
	// Leave an unsealed tail in place (10000 % 512 != 0) plus extra rows.
	extra := NewBatch(seg.Schema())
	for i := 0; i < 37; i++ {
		_ = extra.AppendRow(int64(i-5), float64(i)/2, "zz", true)
	}
	if err := seg.Append(extra); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"id", "x", "s", "flag"} {
		if err := seg.BuildIndex(col); err != nil {
			t.Fatal(err)
		}
	}
	preds := []Pred{
		{Col: "id", Op: OpEQ, Val: int64(7)},
		{Col: "id", Op: OpLT, Val: int64(-90)},
		{Col: "id", Op: OpGE, Val: int64(95)},
		{Col: "id", Op: OpLE, Val: float64(-99.5)},
		{Col: "x", Op: OpEQ, Val: float64(25)},
		{Col: "x", Op: OpGT, Val: float64(99)},
		{Col: "x", Op: OpLE, Val: float64(0.25)},
		{Col: "x", Op: OpGE, Val: int64(100)},
		{Col: "s", Op: OpEQ, Val: "c"},
		{Col: "s", Op: OpGT, Val: "f"},
		{Col: "flag", Op: OpEQ, Val: true},
		{Col: "id", Op: OpEQ, Val: int64(100000)}, // no matches
	}
	cols := []string{"id", "x", "s", "flag"}
	for _, p := range preds {
		p := p
		rows, handled := seg.IndexLookup(&p)
		if !handled {
			t.Fatalf("pred %+v not handled", p)
		}
		var st ScanStats
		got, err := seg.GatherRows(cols, rows, &st)
		if err != nil {
			t.Fatal(err)
		}
		want := scanFiltered(t, seg, cols, &p)
		if !gatherBatchesEqual(got, want) {
			t.Fatalf("pred %+v: index path diverges (got %d rows, want %d)", p, got.Len(), want.Len())
		}
		if st.RowsOut != want.Len() {
			t.Fatalf("stats rows %d want %d", st.RowsOut, want.Len())
		}
	}
	// NE is never index-served.
	if _, handled := seg.IndexLookup(&Pred{Col: "id", Op: OpNE, Val: int64(0)}); handled {
		t.Fatal("OpNE must fall back to scan")
	}
	if _, handled := seg.IndexLookup(&Pred{Col: "id", Op: OpEQ, Val: int64(0)}); !handled {
		t.Fatal("indexed EQ must be handled")
	}
}

// gatherBatchesEqual compares bitwise: Float64bits for floats, exact otherwise.
func gatherBatchesEqual(a, b *Batch) bool {
	if a.Len() != b.Len() || len(a.Cols) != len(b.Cols) {
		return false
	}
	for ci := range a.Cols {
		va, vb := a.Cols[ci], b.Cols[ci]
		if va.Type != vb.Type {
			return false
		}
		if va.Type == TypeFloat64 {
			for i := range va.Floats {
				if math.Float64bits(va.Floats[i]) != math.Float64bits(vb.Floats[i]) {
					return false
				}
			}
			continue
		}
		for i := 0; i < va.Len(); i++ {
			if !reflect.DeepEqual(va.Value(i), vb.Value(i)) {
				return false
			}
		}
	}
	return true
}

// TestIndexSurvivesAppendAndClone: appends maintain attached trees, and a
// clone keeps reading its frozen view while the original advances.
func TestIndexSurvivesAppendAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seg := indexTestSegment(t, rng, 3000, 256)
	if err := seg.BuildIndex("id"); err != nil {
		t.Fatal(err)
	}
	snap := seg.Clone()
	snapRows, _ := snap.IndexLookup(&Pred{Col: "id", Op: OpEQ, Val: int64(5)})

	more := NewBatch(seg.Schema())
	for i := 0; i < 700; i++ {
		_ = more.AppendRow(int64(5), 1.0, "q", false)
	}
	if err := seg.Append(more); err != nil {
		t.Fatal(err)
	}
	p := Pred{Col: "id", Op: OpEQ, Val: int64(5)}
	rows, handled := seg.IndexLookup(&p)
	if !handled {
		t.Fatal("not handled after append")
	}
	if len(rows) != len(snapRows)+700 {
		t.Fatalf("appended rows missing from index: %d vs %d+700", len(rows), len(snapRows))
	}
	got, err := seg.GatherRows([]string{"id", "x"}, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !gatherBatchesEqual(got, scanFiltered(t, seg, []string{"id", "x"}, &p)) {
		t.Fatal("index path diverges after append")
	}
	// The clone's view is frozen.
	afterSnap, _ := snap.IndexLookup(&p)
	if !reflect.DeepEqual(afterSnap, snapRows) {
		t.Fatal("clone's index changed under it")
	}
	// And the clone can append independently.
	if err := snap.Append(more); err != nil {
		t.Fatal(err)
	}
	cloneRows, _ := snap.IndexLookup(&p)
	if len(cloneRows) != len(snapRows)+700 {
		t.Fatalf("clone index not maintained: %d", len(cloneRows))
	}
}

// TestZonePredScansEquivalent: auxiliary zone predicates only skip blocks
// all of whose rows fail them, so a scan with (pred, zone) equals a scan
// with pred alone filtered by the zone conjuncts row-wise — and must skip
// strictly more blocks on clustered data.
func TestZonePredScansEquivalent(t *testing.T) {
	schema := Schema{{Name: "a", Type: TypeInt64}, {Name: "b", Type: TypeInt64}}
	seg := NewSegment(schema, 128)
	b := NewBatch(schema)
	for i := 0; i < 4000; i++ {
		_ = b.AppendRow(int64(i), int64(i/1000)) // b clusters by block
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	pred := &Pred{Col: "a", Op: OpGE, Val: int64(0)} // matches everything
	zone := []Pred{{Col: "b", Op: OpEQ, Val: int64(2)}}
	var zst ScanStats
	var got []int64
	err := seg.ScanZoneWithStatsCtx(context.Background(), []string{"a", "b"}, pred, zone, &zst, func(batch *Batch) error {
		for i := 0; i < batch.Len(); i++ {
			if batch.Cols[1].Ints[i] == 2 {
				got = append(got, batch.Cols[0].Ints[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if zst.BlocksSkipped == 0 {
		t.Fatal("zone predicates skipped nothing on clustered data")
	}
	if len(got) != 1000 || got[0] != 2000 || got[999] != 2999 {
		t.Fatalf("zone scan rows: %d first %v", len(got), got[0])
	}
}

func TestColumnStats(t *testing.T) {
	schema := Schema{{Name: "a", Type: TypeInt64}, {Name: "s", Type: TypeString}, {Name: "f", Type: TypeFloat64}}
	seg := NewSegment(schema, 128)
	b := NewBatch(schema)
	for i := 0; i < 1000; i++ {
		// i/100 forms runs of 100, so the int column RLE-encodes and its
		// per-block NDV estimate comes from run counts.
		_ = b.AppendRow(int64(i/100), "only", float64(i))
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	st, err := seg.ColumnStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasRange || st.Min != 0 || st.Max != 9 || st.Rows != 1000 {
		t.Fatalf("a stats = %+v", st)
	}
	// RLE-ish low-cardinality int column: NDV estimate must be far below rows.
	if st.NDV <= 0 || st.NDV > 200 {
		t.Fatalf("a NDV = %d", st.NDV)
	}
	st, _ = seg.ColumnStats("s")
	if st.HasRange {
		t.Fatal("string column must not report a numeric range")
	}
	if st.NDV <= 0 || st.NDV > 10 {
		t.Fatalf("s NDV = %d (dictionary should collapse a constant column)", st.NDV)
	}
	// With an index attached the NDV becomes exact.
	if err := seg.BuildIndex("a"); err != nil {
		t.Fatal(err)
	}
	st, _ = seg.ColumnStats("a")
	if st.NDV != 10 {
		t.Fatalf("indexed NDV = %d want 10", st.NDV)
	}
	// NaN anywhere invalidates the range.
	nb := NewBatch(schema)
	_ = nb.AppendRow(int64(1), "x", math.NaN())
	_ = seg.Append(nb)
	st, _ = seg.ColumnStats("f")
	if st.HasRange {
		t.Fatal("NaN in tail must clear HasRange")
	}
}

// TestColumnStatsCachedAndConcurrent pins the stats memo: concurrent readers
// may fill it simultaneously (planners share published segment versions), and
// any mutation must drop it.
func TestColumnStatsCachedAndConcurrent(t *testing.T) {
	schema := Schema{{Name: "a", Type: TypeInt64}, {Name: "f", Type: TypeFloat64}}
	seg := NewSegment(schema, 64)
	b := NewBatch(schema)
	for i := 0; i < 500; i++ {
		_ = b.AppendRow(int64(i%20), float64(i))
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := seg.ColumnStats("a"); err != nil {
					t.Error(err)
					return
				}
				if _, err := seg.ColumnStats("f"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	before, _ := seg.ColumnStats("a")
	nb := NewBatch(schema)
	_ = nb.AppendRow(int64(99), float64(-1))
	if err := seg.Append(nb); err != nil {
		t.Fatal(err)
	}
	after, _ := seg.ColumnStats("a")
	if after.Rows != before.Rows+1 || after.Max != 99 {
		t.Fatalf("stale stats after append: before %+v after %+v", before, after)
	}
	fa, _ := seg.ColumnStats("f")
	if !fa.HasRange || fa.Min != -1 {
		t.Fatalf("float range not refreshed: %+v", fa)
	}
}
