package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding enumerates the physical block encodings. Vertica's storage applies
// per-column compression; we implement the classic columnar family: plain,
// run-length, delta (integers), and dictionary (strings).
type Encoding uint8

const (
	// EncPlain stores values verbatim.
	EncPlain Encoding = iota
	// EncRLE stores (value, run-length) pairs.
	EncRLE
	// EncDelta stores zig-zag varint deltas (integer columns only).
	EncDelta
	// EncDict stores a dictionary plus varint codes (string columns only).
	EncDict
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "PLAIN"
	case EncRLE:
		return "RLE"
	case EncDelta:
		return "DELTA"
	case EncDict:
		return "DICT"
	default:
		return fmt.Sprintf("ENC(%d)", uint8(e))
	}
}

// Block header layout: [type byte][encoding byte][uvarint row count][payload].

// EncodeBlock serializes a vector with the chosen encoding.
func EncodeBlock(v *Vector, enc Encoding) ([]byte, error) {
	return AppendBlock(make([]byte, 0, 16+v.Len()*8), v, enc)
}

// AppendBlock appends the block encoding of v to buf and returns the extended
// slice. With a buf of sufficient capacity the encode allocates nothing; this
// is the form the pooled transfer path uses.
func AppendBlock(buf []byte, v *Vector, enc Encoding) ([]byte, error) {
	buf = append(buf, byte(v.Type), byte(enc))
	buf = binary.AppendUvarint(buf, uint64(v.Len()))
	var err error
	switch enc {
	case EncPlain:
		buf, err = encodePlain(buf, v)
	case EncRLE:
		buf, err = encodeRLE(buf, v)
	case EncDelta:
		buf, err = encodeDelta(buf, v)
	case EncDict:
		buf, err = encodeDict(buf, v)
	default:
		err = fmt.Errorf("colstore: unknown encoding %v", enc)
	}
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// BestEncoding picks an encoding for the vector by inspecting its contents:
// long runs favor RLE, small distinct string sets favor DICT, sorted-ish
// integers favor DELTA; otherwise PLAIN.
func BestEncoding(v *Vector) Encoding {
	n := v.Len()
	if n == 0 {
		return EncPlain
	}
	runs := countRuns(v)
	if runs*4 <= n { // average run length >= 4
		return EncRLE
	}
	switch v.Type {
	case TypeString:
		distinct := map[string]struct{}{}
		for _, s := range v.Strs {
			distinct[s] = struct{}{}
			if len(distinct) > n/4+1 {
				return EncPlain
			}
		}
		return EncDict
	case TypeInt64:
		// Delta wins when consecutive deltas are small.
		var smallDeltas int
		for i := 1; i < n; i++ {
			d := v.Ints[i] - v.Ints[i-1]
			if d >= -(1<<20) && d < 1<<20 {
				smallDeltas++
			}
		}
		if smallDeltas*10 >= (n-1)*9 { // ≥90% small deltas
			return EncDelta
		}
	}
	return EncPlain
}

func countRuns(v *Vector) int {
	n := v.Len()
	if n == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < n; i++ {
		if !valueEq(v, i, i-1) {
			runs++
		}
	}
	return runs
}

func valueEq(v *Vector, i, j int) bool {
	switch v.Type {
	case TypeInt64:
		return v.Ints[i] == v.Ints[j]
	case TypeFloat64:
		// Treat NaN as equal to NaN so RLE round-trips bit-wise.
		return math.Float64bits(v.Floats[i]) == math.Float64bits(v.Floats[j])
	case TypeString:
		return v.Strs[i] == v.Strs[j]
	case TypeBool:
		return v.Bools[i] == v.Bools[j]
	}
	return false
}

func encodePlain(buf []byte, v *Vector) ([]byte, error) {
	switch v.Type {
	case TypeInt64:
		for _, x := range v.Ints {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
	case TypeFloat64:
		for _, x := range v.Floats {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	case TypeString:
		for _, s := range v.Strs {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	case TypeBool:
		for _, b := range v.Bools {
			if b {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	default:
		return nil, fmt.Errorf("colstore: plain-encode invalid type %v", v.Type)
	}
	return buf, nil
}

func encodeRLE(buf []byte, v *Vector) ([]byte, error) {
	n := v.Len()
	i := 0
	for i < n {
		j := i + 1
		for j < n && valueEq(v, j, i) {
			j++
		}
		buf = binary.AppendUvarint(buf, uint64(j-i))
		var err error
		buf, err = appendOne(buf, v, i)
		if err != nil {
			return nil, err
		}
		i = j
	}
	return buf, nil
}

func appendOne(buf []byte, v *Vector, i int) ([]byte, error) {
	switch v.Type {
	case TypeInt64:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Ints[i])), nil
	case TypeFloat64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Floats[i])), nil
	case TypeString:
		buf = binary.AppendUvarint(buf, uint64(len(v.Strs[i])))
		return append(buf, v.Strs[i]...), nil
	case TypeBool:
		if v.Bools[i] {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	}
	return nil, fmt.Errorf("colstore: encode invalid type %v", v.Type)
}

func encodeDelta(buf []byte, v *Vector) ([]byte, error) {
	if v.Type != TypeInt64 {
		return nil, fmt.Errorf("colstore: DELTA encoding requires INTEGER, got %v", v.Type)
	}
	prev := int64(0)
	for _, x := range v.Ints {
		buf = binary.AppendVarint(buf, x-prev)
		prev = x
	}
	return buf, nil
}

func encodeDict(buf []byte, v *Vector) ([]byte, error) {
	if v.Type != TypeString {
		return nil, fmt.Errorf("colstore: DICT encoding requires VARCHAR, got %v", v.Type)
	}
	dict := map[string]uint64{}
	var order []string
	codes := make([]uint64, 0, v.Len())
	for _, s := range v.Strs {
		c, ok := dict[s]
		if !ok {
			c = uint64(len(order))
			dict[s] = c
			order = append(order, s)
		}
		codes = append(codes, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	for _, s := range order {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, c := range codes {
		buf = binary.AppendUvarint(buf, c)
	}
	return buf, nil
}

// MaxBlockRows bounds the row count a block header may claim. Real blocks
// hold at most the segment's blockRows (default 4096); the bound exists so a
// corrupt or hostile header cannot make the decoder reserve unbounded memory
// (blocks arrive over the transfer wire, not only from our own encoder).
const MaxBlockRows = 1 << 24

// DecodeBlock deserializes a block produced by EncodeBlock. Corrupt input —
// truncated payloads, unknown type or encoding bytes, row counts beyond
// MaxBlockRows, run lengths or dictionary codes that disagree with the
// header — returns an error, never a panic.
func DecodeBlock(data []byte) (*Vector, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("colstore: block too short (%d bytes)", len(data))
	}
	typ := Type(data[0])
	switch typ {
	case TypeInt64, TypeFloat64, TypeString, TypeBool:
	default:
		return nil, fmt.Errorf("colstore: unknown type byte %d", data[0])
	}
	// Clamp the capacity hint: appends grow as needed, and a header may not
	// commit the decoder to a huge allocation before payload validation.
	hint := 0
	if count, m := binary.Uvarint(data[2:]); m > 0 && count <= MaxBlockRows {
		hint = int(count)
		if hint > DefaultBlockRows {
			hint = DefaultBlockRows
		}
	}
	v := NewVector(typ, hint)
	if err := DecodeBlockInto(v, data); err != nil {
		return nil, err
	}
	return v, nil
}

// DecodeBlockInto decodes a block produced by EncodeBlock, appending the rows
// to v (which the caller typically Resets first). The block's type byte must
// match v.Type. This is the reuse form of DecodeBlock: with a vector of
// sufficient capacity the decode allocates nothing beyond string payloads.
// The same corruption guarantees apply — errors, never panics.
func DecodeBlockInto(v *Vector, data []byte) error {
	if len(data) < 3 {
		return fmt.Errorf("colstore: block too short (%d bytes)", len(data))
	}
	typ := Type(data[0])
	switch typ {
	case TypeInt64, TypeFloat64, TypeString, TypeBool:
	default:
		return fmt.Errorf("colstore: unknown type byte %d", data[0])
	}
	if typ != v.Type {
		return fmt.Errorf("colstore: decode %v block into %v vector", typ, v.Type)
	}
	enc := Encoding(data[1])
	rest := data[2:]
	count, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("colstore: corrupt block header")
	}
	if count > MaxBlockRows {
		return fmt.Errorf("colstore: block claims %d rows (max %d)", count, MaxBlockRows)
	}
	rest = rest[m:]
	n := int(count)
	var err error
	switch enc {
	case EncPlain:
		_, err = decodePlain(v, rest, n)
	case EncRLE:
		_, err = decodeRLE(v, rest, n)
	case EncDelta:
		_, err = decodeDelta(v, rest, n)
	case EncDict:
		_, err = decodeDict(v, rest, n)
	default:
		err = fmt.Errorf("colstore: unknown encoding byte %d", data[1])
	}
	return err
}

func decodePlain(v *Vector, rest []byte, n int) (*Vector, error) {
	switch v.Type {
	case TypeInt64, TypeFloat64:
		if len(rest) < 8*n {
			return nil, fmt.Errorf("colstore: truncated plain block")
		}
		for i := 0; i < n; i++ {
			u := binary.LittleEndian.Uint64(rest[i*8:])
			if v.Type == TypeInt64 {
				v.Ints = append(v.Ints, int64(u))
			} else {
				v.Floats = append(v.Floats, math.Float64frombits(u))
			}
		}
	case TypeString:
		for i := 0; i < n; i++ {
			l, m := binary.Uvarint(rest)
			if m <= 0 || uint64(len(rest)-m) < l {
				return nil, fmt.Errorf("colstore: truncated string block")
			}
			rest = rest[m:]
			v.Strs = append(v.Strs, string(rest[:l]))
			rest = rest[l:]
		}
	case TypeBool:
		if len(rest) < n {
			return nil, fmt.Errorf("colstore: truncated bool block")
		}
		for i := 0; i < n; i++ {
			v.Bools = append(v.Bools, rest[i] != 0)
		}
	default:
		return nil, fmt.Errorf("colstore: decode invalid type %v", v.Type)
	}
	return v, nil
}

func decodeRLE(v *Vector, rest []byte, n int) (*Vector, error) {
	total := 0
	for total < n {
		run, m := binary.Uvarint(rest)
		if m <= 0 {
			return nil, fmt.Errorf("colstore: truncated RLE block")
		}
		if run == 0 || run > uint64(n-total) {
			return nil, fmt.Errorf("colstore: RLE run %d exceeds remaining %d rows", run, n-total)
		}
		rest = rest[m:]
		var err error
		rest, err = decodeOneRepeated(v, rest, int(run))
		if err != nil {
			return nil, err
		}
		total += int(run)
	}
	if total != n {
		return nil, fmt.Errorf("colstore: RLE block decoded %d rows, want %d", total, n)
	}
	return v, nil
}

func decodeOneRepeated(v *Vector, rest []byte, run int) ([]byte, error) {
	switch v.Type {
	case TypeInt64, TypeFloat64:
		if len(rest) < 8 {
			return nil, fmt.Errorf("colstore: truncated RLE value")
		}
		u := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		for i := 0; i < run; i++ {
			if v.Type == TypeInt64 {
				v.Ints = append(v.Ints, int64(u))
			} else {
				v.Floats = append(v.Floats, math.Float64frombits(u))
			}
		}
	case TypeString:
		l, m := binary.Uvarint(rest)
		if m <= 0 || uint64(len(rest)-m) < l {
			return nil, fmt.Errorf("colstore: truncated RLE string")
		}
		rest = rest[m:]
		s := string(rest[:l])
		rest = rest[l:]
		for i := 0; i < run; i++ {
			v.Strs = append(v.Strs, s)
		}
	case TypeBool:
		if len(rest) < 1 {
			return nil, fmt.Errorf("colstore: truncated RLE bool")
		}
		b := rest[0] != 0
		rest = rest[1:]
		for i := 0; i < run; i++ {
			v.Bools = append(v.Bools, b)
		}
	default:
		return nil, fmt.Errorf("colstore: decode invalid type %v", v.Type)
	}
	return rest, nil
}

func decodeDelta(v *Vector, rest []byte, n int) (*Vector, error) {
	if v.Type != TypeInt64 {
		return nil, fmt.Errorf("colstore: DELTA block with type %v", v.Type)
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, m := binary.Varint(rest)
		if m <= 0 {
			return nil, fmt.Errorf("colstore: truncated delta block")
		}
		rest = rest[m:]
		prev += d
		v.Ints = append(v.Ints, prev)
	}
	return v, nil
}

func decodeDict(v *Vector, rest []byte, n int) (*Vector, error) {
	if v.Type != TypeString {
		return nil, fmt.Errorf("colstore: DICT block with type %v", v.Type)
	}
	dn, m := binary.Uvarint(rest)
	if m <= 0 {
		return nil, fmt.Errorf("colstore: truncated dict header")
	}
	rest = rest[m:]
	// Every dictionary entry needs at least one header byte, so the entry
	// count cannot exceed the remaining payload.
	if dn > uint64(len(rest)) {
		return nil, fmt.Errorf("colstore: dict claims %d entries in %d bytes", dn, len(rest))
	}
	dict := make([]string, 0, dn)
	for i := uint64(0); i < dn; i++ {
		l, m := binary.Uvarint(rest)
		if m <= 0 || uint64(len(rest)-m) < l {
			return nil, fmt.Errorf("colstore: truncated dict entry")
		}
		rest = rest[m:]
		dict = append(dict, string(rest[:l]))
		rest = rest[l:]
	}
	for i := 0; i < n; i++ {
		c, m := binary.Uvarint(rest)
		if m <= 0 {
			return nil, fmt.Errorf("colstore: truncated dict codes")
		}
		rest = rest[m:]
		if c >= uint64(len(dict)) {
			return nil, fmt.Errorf("colstore: dict code %d out of range %d", c, len(dict))
		}
		v.Strs = append(v.Strs, dict[c])
	}
	return v, nil
}
