package colstore

import (
	"encoding/binary"
	"math"
	"testing"
)

// vectorFromBytes deterministically builds a vector of the given type from
// arbitrary fuzz bytes, so the fuzzer explores value shapes (runs, NaNs,
// empty strings, sign flips) through a stable mapping.
func vectorFromBytes(typ Type, data []byte) *Vector {
	v := NewVector(typ, 0)
	for len(data) > 0 {
		switch typ {
		case TypeInt64:
			var u uint64
			for i := 0; i < 8 && len(data) > 0; i++ {
				u = u<<8 | uint64(data[0])
				data = data[1:]
			}
			v.Ints = append(v.Ints, int64(u))
		case TypeFloat64:
			var u uint64
			for i := 0; i < 8 && len(data) > 0; i++ {
				u = u<<8 | uint64(data[0])
				data = data[1:]
			}
			v.Floats = append(v.Floats, math.Float64frombits(u))
		case TypeString:
			l := int(data[0]) % 9
			data = data[1:]
			if l > len(data) {
				l = len(data)
			}
			v.Strs = append(v.Strs, string(data[:l]))
			data = data[l:]
		case TypeBool:
			v.Bools = append(v.Bools, data[0]&1 == 1)
			data = data[1:]
		default:
			return v
		}
	}
	return v
}

// FuzzEncodingRoundTrip checks decode(encode(v)) == v bit-for-bit, for every
// type and every encoding valid for that type, including BestEncoding's pick.
func FuzzEncodingRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{0xff, 0xf8, 0, 0, 0, 0, 0, 1}) // NaN payload
	f.Add(uint8(2), []byte{3, 'a', 'b', 'c', 0, 3, 'a', 'b', 'c'})
	f.Add(uint8(3), []byte{0, 1, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, typSel uint8, data []byte) {
		typ := []Type{TypeInt64, TypeFloat64, TypeString, TypeBool}[typSel%4]
		v := vectorFromBytes(typ, data)
		encs := []Encoding{EncPlain, EncRLE, BestEncoding(v)}
		if typ == TypeInt64 {
			encs = append(encs, EncDelta)
		}
		if typ == TypeString {
			encs = append(encs, EncDict)
		}
		for _, enc := range encs {
			if v.Len() > MaxBlockRows {
				t.Skip("larger than any real block")
			}
			blk, err := EncodeBlock(v, enc)
			if err != nil {
				t.Fatalf("encode %v/%v: %v", typ, enc, err)
			}
			got, err := DecodeBlock(blk)
			if err != nil {
				t.Fatalf("decode %v/%v: %v", typ, enc, err)
			}
			if !vectorsEqual(v, got) {
				t.Fatalf("round trip %v/%v: %d rows in, %d out", typ, enc, v.Len(), got.Len())
			}
		}
	})
}

// FuzzDecodeBlock throws arbitrary bytes at the decoder: it must return an
// error or a well-formed vector, never panic or claim more rows than decoded.
func FuzzDecodeBlock(f *testing.F) {
	// Seed with valid blocks so the fuzzer starts from the interesting region.
	iv := &Vector{Type: TypeInt64, Ints: []int64{1, 1, 1, 5, -9}}
	sv := &Vector{Type: TypeString, Strs: []string{"x", "x", "yy", ""}}
	for _, seed := range [][2]any{{iv, EncPlain}, {iv, EncRLE}, {iv, EncDelta}, {sv, EncDict}} {
		if blk, err := EncodeBlock(seed[0].(*Vector), seed[1].(Encoding)); err == nil {
			f.Add(blk)
		}
	}
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{byte(TypeString), byte(EncDict), 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeBlock(data)
		if err != nil {
			return
		}
		if v == nil {
			t.Fatal("nil vector with nil error")
		}
		// The header's row count must match the decoded length.
		count, m := binary.Uvarint(data[2:])
		if m <= 0 || int(count) != v.Len() {
			t.Fatalf("header claims %d rows, decoded %d", count, v.Len())
		}
	})
}
