package colstore

import (
	"testing"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Type: TypeInt64},
		{Name: "x", Type: TypeFloat64},
		{Name: "name", Type: TypeString},
		{Name: "flag", Type: TypeBool},
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INTEGER": TypeInt64, "int": TypeInt64, "BIGINT": TypeInt64,
		"FLOAT": TypeFloat64, "double": TypeFloat64, "NUMERIC": TypeFloat64,
		"VARCHAR": TypeString, "text": TypeString,
		"BOOLEAN": TypeBool, "bool": TypeBool,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Fatalf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt64.String() != "INTEGER" || TypeFloat64.String() != "FLOAT" ||
		TypeString.String() != "VARCHAR" || TypeBool.String() != "BOOLEAN" {
		t.Fatal("type names wrong")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p, err := s.Project([]string{"x", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Name != "x" || p[1].Name != "id" {
		t.Fatalf("projection order wrong: %v", p)
	}
	if _, err := s.Project([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestSchemaEqualAndIndex(t *testing.T) {
	s := testSchema()
	if !s.Equal(testSchema()) {
		t.Fatal("identical schemas should be equal")
	}
	if s.Equal(s[:2]) {
		t.Fatal("different lengths should not be equal")
	}
	if s.ColIndex("name") != 2 || s.ColIndex("zz") != -1 {
		t.Fatal("ColIndex wrong")
	}
}

func TestVectorAppendValue(t *testing.T) {
	v := NewVector(TypeFloat64, 0)
	if err := v.AppendValue(1.5); err != nil {
		t.Fatal(err)
	}
	if err := v.AppendValue(int64(2)); err != nil { // numeric widening
		t.Fatal(err)
	}
	if err := v.AppendValue("x"); err == nil {
		t.Fatal("expected type error")
	}
	if v.Len() != 2 || v.Floats[1] != 2.0 {
		t.Fatalf("vector = %v", v.Floats)
	}

	iv := NewVector(TypeInt64, 0)
	if err := iv.AppendValue(3.14); err == nil {
		t.Fatal("float into int column should fail")
	}
	sv := NewVector(TypeString, 0)
	if err := sv.AppendValue("hi"); err != nil {
		t.Fatal(err)
	}
	bv := NewVector(TypeBool, 0)
	if err := bv.AppendValue(true); err != nil {
		t.Fatal(err)
	}
	if sv.Value(0) != "hi" || bv.Value(0) != true {
		t.Fatal("Value accessor wrong")
	}
}

func TestVectorSliceGather(t *testing.T) {
	v := IntVector([]int64{10, 20, 30, 40})
	sl := v.Slice(1, 3)
	if sl.Len() != 2 || sl.Ints[0] != 20 {
		t.Fatalf("slice = %v", sl.Ints)
	}
	g := v.Gather([]int{3, 0})
	if g.Ints[0] != 40 || g.Ints[1] != 10 {
		t.Fatalf("gather = %v", g.Ints)
	}
}

func TestBatchAppendRowValidate(t *testing.T) {
	b := NewBatch(testSchema())
	if err := b.AppendRow(int64(1), 2.5, "a", true); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(int64(2), 3.5, "b", false); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(int64(1)); err == nil {
		t.Fatal("wrong arity should fail")
	}
	row := b.Row(1)
	if row[0] != int64(2) || row[2] != "b" {
		t.Fatalf("row = %v", row)
	}
}

func TestBatchValidateCatchesRagged(t *testing.T) {
	b := NewBatch(testSchema())
	_ = b.AppendRow(int64(1), 1.0, "a", true)
	b.Cols[0].Ints = append(b.Cols[0].Ints, 99) // corrupt
	if err := b.Validate(); err == nil {
		t.Fatal("ragged batch should fail validation")
	}
}

func TestBatchProjectAndSlice(t *testing.T) {
	b := NewBatch(testSchema())
	for i := 0; i < 5; i++ {
		_ = b.AppendRow(int64(i), float64(i), "s", i%2 == 0)
	}
	p, err := b.Project([]string{"x", "flag"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cols) != 2 || p.Schema[0].Name != "x" {
		t.Fatalf("project = %+v", p.Schema)
	}
	sl := b.Slice(2, 4)
	if sl.Len() != 2 || sl.Cols[0].Ints[0] != 2 {
		t.Fatal("slice wrong")
	}
	g := b.Gather([]int{4, 0})
	if g.Cols[0].Ints[0] != 4 || g.Cols[0].Ints[1] != 0 {
		t.Fatal("gather wrong")
	}
}

func TestBatchAppendBatchSchemaMismatch(t *testing.T) {
	a := NewBatch(testSchema())
	b := NewBatch(testSchema()[:2])
	if err := a.AppendBatch(b); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{float64(3), int64(2), 1},
		{int64(2), float64(2.5), -1},
		{"a", "b", -1},
		{true, false, 1},
		{false, false, 0},
	}
	for _, c := range cases {
		got, err := CompareValues(c.a, c.b)
		if err != nil || got != c.want {
			t.Fatalf("CompareValues(%v,%v) = %d,%v want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := CompareValues("a", int64(1)); err == nil {
		t.Fatal("incomparable types should error")
	}
}
