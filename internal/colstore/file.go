package colstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"verticadr/internal/atomicfile"
)

// Segment file format (all integers little-endian unless varint):
//
//	magic "VSEGF1\n\x00"                                   (8 bytes)
//	sealed block payloads, concatenated column-major
//	footer:
//	  uvarint ncols
//	  per column: uvarint len(name), name, type byte, uvarint nblocks,
//	    per block: uvarint offset, uvarint length, uvarint rows,
//	               crc32 (4 bytes), stats byte, min float64, max float64
//	  uvarint total rows
//	footer length (8 bytes), footer crc32 (4 bytes), magic "VSEGEND1" (8 bytes)

var (
	segMagic    = []byte("VSEGF1\n\x00")
	segEndMagic = []byte("VSEGEND1")
)

// Persist seals the segment and writes it to path crash-atomically: the
// bytes go to a temp file in the same directory, which is fsynced before an
// atomic rename over path, and the parent directory is fsynced after — so a
// crash at any instant leaves either the complete old file or the complete
// new one, never a torn or unlinked segment.
func (s *Segment) Persist(path string) error {
	if err := s.Seal(); err != nil {
		return err
	}
	var body bytes.Buffer
	body.Write(segMagic)
	type blockMeta struct {
		off, length, rows int
		crc               uint32
		hasStats          bool
		min, max          float64
	}
	metas := make([][]blockMeta, len(s.schema))
	for ci := range s.schema {
		for _, ref := range s.sealed[ci] {
			m := blockMeta{
				off:      body.Len(),
				length:   len(ref.data),
				rows:     ref.rows,
				crc:      crc32.ChecksumIEEE(ref.data),
				hasStats: ref.hasStats,
				min:      ref.min,
				max:      ref.max,
			}
			body.Write(ref.data)
			metas[ci] = append(metas[ci], m)
		}
	}
	var footer bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(w *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		w.Write(scratch[:n])
	}
	putUvarint(&footer, uint64(len(s.schema)))
	for ci, col := range s.schema {
		putUvarint(&footer, uint64(len(col.Name)))
		footer.WriteString(col.Name)
		footer.WriteByte(byte(col.Type))
		putUvarint(&footer, uint64(len(metas[ci])))
		for _, m := range metas[ci] {
			putUvarint(&footer, uint64(m.off))
			putUvarint(&footer, uint64(m.length))
			putUvarint(&footer, uint64(m.rows))
			var crcb [4]byte
			binary.LittleEndian.PutUint32(crcb[:], m.crc)
			footer.Write(crcb[:])
			if m.hasStats {
				footer.WriteByte(1)
			} else {
				footer.WriteByte(0)
			}
			var f8 [8]byte
			binary.LittleEndian.PutUint64(f8[:], math.Float64bits(m.min))
			footer.Write(f8[:])
			binary.LittleEndian.PutUint64(f8[:], math.Float64bits(m.max))
			footer.Write(f8[:])
		}
	}
	putUvarint(&footer, uint64(s.rows))

	body.Write(footer.Bytes())
	var tail [8 + 4]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(footer.Len()))
	binary.LittleEndian.PutUint32(tail[8:], crc32.ChecksumIEEE(footer.Bytes()))
	body.Write(tail[:])
	body.Write(segEndMagic)

	if err := atomicfile.WriteFile(path, body.Bytes(), 0o644); err != nil {
		return fmt.Errorf("colstore: persist: %w", err)
	}
	return nil
}

// OpenSegment reads a segment file written by Persist, verifying checksums.
func OpenSegment(path string) (*Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: open segment: %w", err)
	}
	minSize := len(segMagic) + 8 + 4 + len(segEndMagic)
	if len(data) < minSize {
		return nil, fmt.Errorf("colstore: segment file %q too short", path)
	}
	if !bytes.Equal(data[:len(segMagic)], segMagic) {
		return nil, fmt.Errorf("colstore: %q is not a segment file (bad magic)", path)
	}
	if !bytes.Equal(data[len(data)-len(segEndMagic):], segEndMagic) {
		return nil, fmt.Errorf("colstore: %q truncated (bad end magic)", path)
	}
	tailOff := len(data) - len(segEndMagic) - 12
	footerLen := int(binary.LittleEndian.Uint64(data[tailOff : tailOff+8]))
	footerCRC := binary.LittleEndian.Uint32(data[tailOff+8 : tailOff+12])
	footerOff := tailOff - footerLen
	if footerOff < len(segMagic) {
		return nil, fmt.Errorf("colstore: %q corrupt footer length", path)
	}
	footer := data[footerOff:tailOff]
	if crc32.ChecksumIEEE(footer) != footerCRC {
		return nil, fmt.Errorf("colstore: %q footer checksum mismatch", path)
	}

	r := bytes.NewReader(footer)
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(r) }
	ncols, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("colstore: corrupt footer: %w", err)
	}
	schema := make(Schema, 0, ncols)
	sealed := make([][]blockRef, 0, ncols)
	for c := uint64(0); c < ncols; c++ {
		nameLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := r.Read(name); err != nil {
			return nil, err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		schema = append(schema, ColumnSchema{Name: string(name), Type: Type(tb)})
		nblocks, err := readUvarint()
		if err != nil {
			return nil, err
		}
		refs := make([]blockRef, 0, nblocks)
		for b := uint64(0); b < nblocks; b++ {
			off, err := readUvarint()
			if err != nil {
				return nil, err
			}
			length, err := readUvarint()
			if err != nil {
				return nil, err
			}
			rows, err := readUvarint()
			if err != nil {
				return nil, err
			}
			var crcb [4]byte
			if _, err := r.Read(crcb[:]); err != nil {
				return nil, err
			}
			statB, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			var f8 [8]byte
			if _, err := r.Read(f8[:]); err != nil {
				return nil, err
			}
			minV := math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
			if _, err := r.Read(f8[:]); err != nil {
				return nil, err
			}
			maxV := math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
			if int(off)+int(length) > footerOff {
				return nil, fmt.Errorf("colstore: block extent out of range in %q", path)
			}
			blk := data[int(off) : int(off)+int(length)]
			if crc32.ChecksumIEEE(blk) != binary.LittleEndian.Uint32(crcb[:]) {
				return nil, fmt.Errorf("colstore: block checksum mismatch in %q (col %d block %d)", path, c, b)
			}
			refs = append(refs, blockRef{
				data:     append([]byte(nil), blk...),
				rows:     int(rows),
				hasStats: statB == 1,
				min:      minV,
				max:      maxV,
			})
		}
		sealed = append(sealed, refs)
	}
	totalRows, err := readUvarint()
	if err != nil {
		return nil, err
	}
	seg := &Segment{
		schema:    schema,
		blockRows: DefaultBlockRows,
		sealed:    sealed,
		tail:      NewBatch(schema),
		rows:      int(totalRows),
	}
	return seg, nil
}
