package colstore

import (
	"fmt"
	"testing"

	"verticadr/internal/parallel"
)

// benchSegment builds a sealed segment with numeric and string columns sized
// for scan benchmarking: rows rows in blocks of blockRows.
func benchSegment(b *testing.B, rows, blockRows int) *Segment {
	b.Helper()
	schema := Schema{
		{Name: "id", Type: TypeInt64},
		{Name: "v", Type: TypeFloat64},
		{Name: "tag", Type: TypeString},
	}
	seg := NewSegment(schema, blockRows)
	batch := NewBatch(schema)
	for i := 0; i < rows; i++ {
		if err := batch.AppendRow(int64(i), float64(i%1000), fmt.Sprintf("tag%d", i%17)); err != nil {
			b.Fatal(err)
		}
	}
	if err := seg.Append(batch); err != nil {
		b.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		b.Fatal(err)
	}
	return seg
}

// BenchmarkSegmentScan measures the serial scan path with a selective
// predicate (the satellite target for scratch-buffer reuse: allocations per
// block must not scale with the predicate index slices).
func BenchmarkSegmentScan(b *testing.B) {
	seg := benchSegment(b, 200_000, DefaultBlockRows)
	pred := &Pred{Col: "v", Op: OpLT, Val: float64(500)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		err := seg.Scan([]string{"id", "v"}, pred, func(batch *Batch) error {
			rows += batch.Len()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows != 100_000 {
			b.Fatalf("rows = %d", rows)
		}
	}
}

// BenchmarkSegmentParScan measures the block-parallel scan at fixed degrees.
// Degree 1 is the serial fallback; higher degrees decode blocks concurrently
// and deliver them in order.
func BenchmarkSegmentParScan(b *testing.B) {
	seg := benchSegment(b, 200_000, DefaultBlockRows)
	pred := &Pred{Col: "v", Op: OpLT, Val: float64(500)}
	for _, deg := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("degree=%d", deg), func(b *testing.B) {
			pool := parallel.NewPool(deg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows := 0
				err := seg.ParScanWithStats([]string{"id", "v"}, pred, pool, nil, func(batch *Batch) error {
					rows += batch.Len()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if rows != 100_000 {
					b.Fatalf("rows = %d", rows)
				}
			}
		})
	}
}
