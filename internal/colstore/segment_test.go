package colstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func fillSegment(t *testing.T, seg *Segment, n int) *Batch {
	t.Helper()
	all := NewBatch(seg.Schema())
	b := NewBatch(seg.Schema())
	for i := 0; i < n; i++ {
		row := []any{int64(i), float64(i) * 1.5, "s", i%3 == 0}
		if err := b.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
		if err := all.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 100 {
			if err := seg.Append(b); err != nil {
				t.Fatal(err)
			}
			b = NewBatch(seg.Schema())
		}
	}
	if b.Len() > 0 {
		if err := seg.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return all
}

func TestSegmentAppendScanAll(t *testing.T) {
	seg := NewSegment(testSchema(), 256)
	want := fillSegment(t, seg, 1000)
	if seg.Rows() != 1000 {
		t.Fatalf("rows = %d", seg.Rows())
	}
	got, err := seg.ReadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1000 {
		t.Fatalf("read %d rows", got.Len())
	}
	for i := 0; i < 1000; i += 97 {
		w, g := want.Row(i), got.Row(i)
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("row %d col %d: got %v want %v", i, j, g[j], w[j])
			}
		}
	}
}

func TestSegmentProjection(t *testing.T) {
	seg := NewSegment(testSchema(), 128)
	fillSegment(t, seg, 500)
	got, err := seg.ReadAll([]string{"x", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 || got.Schema[0].Name != "x" {
		t.Fatalf("projection schema %v", got.Schema)
	}
	if got.Cols[1].Ints[42] != 42 {
		t.Fatal("projection data wrong")
	}
}

func TestSegmentPredicate(t *testing.T) {
	seg := NewSegment(testSchema(), 64)
	fillSegment(t, seg, 500)
	got, err := seg.ReadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	var count int
	pred := &Pred{Col: "id", Op: OpGE, Val: int64(450)}
	err = seg.Scan([]string{"id"}, pred, func(b *Batch) error {
		for _, v := range b.Cols[0].Ints {
			if v < 450 {
				t.Fatalf("predicate let through %d", v)
			}
			count++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("predicate matched %d rows, want 50", count)
	}
}

func TestSegmentPredicateOnUnprojectedColumn(t *testing.T) {
	seg := NewSegment(testSchema(), 64)
	fillSegment(t, seg, 300)
	var count int
	pred := &Pred{Col: "id", Op: OpLT, Val: int64(10)}
	err := seg.Scan([]string{"x"}, pred, func(b *Batch) error {
		count += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("got %d rows, want 10", count)
	}
}

func TestSegmentPredicateOps(t *testing.T) {
	seg := NewSegment(Schema{{Name: "v", Type: TypeInt64}}, 32)
	b := NewBatch(seg.Schema())
	for i := 0; i < 100; i++ {
		_ = b.AppendRow(int64(i))
	}
	_ = seg.Append(b)
	cases := []struct {
		op   CompareOp
		val  int64
		want int
	}{
		{OpEQ, 5, 1}, {OpNE, 5, 99}, {OpLT, 10, 10},
		{OpLE, 10, 11}, {OpGT, 90, 9}, {OpGE, 90, 10},
	}
	for _, c := range cases {
		var n int
		err := seg.Scan(nil, &Pred{Col: "v", Op: c.op, Val: c.val}, func(b *Batch) error {
			n += b.Len()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != c.want {
			t.Fatalf("op %v %d: got %d want %d", c.op, c.val, n, c.want)
		}
	}
}

func TestSegmentUnknownPredicateColumn(t *testing.T) {
	seg := NewSegment(testSchema(), 64)
	err := seg.Scan(nil, &Pred{Col: "nope", Op: OpEQ, Val: int64(1)}, func(*Batch) error { return nil })
	if err == nil {
		t.Fatal("expected error for unknown predicate column")
	}
}

func TestSegmentPersistOpen(t *testing.T) {
	dir := t.TempDir()
	seg := NewSegment(testSchema(), 200)
	want := fillSegment(t, seg, 1234)
	path := filepath.Join(dir, "seg1.vseg")
	if err := seg.Persist(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 1234 {
		t.Fatalf("reopened rows = %d", got.Rows())
	}
	if !got.Schema().Equal(testSchema()) {
		t.Fatalf("reopened schema = %v", got.Schema())
	}
	data, err := got.ReadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1234; i += 111 {
		w, g := want.Row(i), data.Row(i)
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("row %d col %d: got %v want %v", i, j, g[j], w[j])
			}
		}
	}
}

func TestOpenSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	seg := NewSegment(testSchema(), 100)
	fillSegment(t, seg, 300)
	path := filepath.Join(dir, "seg.vseg")
	if err := seg.Persist(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)

	// Flip a byte in the middle (block payload) → checksum failure.
	bad := append([]byte(nil), data...)
	bad[len(segMagic)+10] ^= 0xFF
	badPath := filepath.Join(dir, "bad.vseg")
	_ = os.WriteFile(badPath, bad, 0o644)
	if _, err := OpenSegment(badPath); err == nil {
		t.Fatal("corrupt block should fail to open")
	}

	// Truncate → bad end magic.
	_ = os.WriteFile(badPath, data[:len(data)-3], 0o644)
	if _, err := OpenSegment(badPath); err == nil {
		t.Fatal("truncated file should fail to open")
	}

	// Not a segment file at all.
	_ = os.WriteFile(badPath, []byte("hello world, definitely not a segment"), 0o644)
	if _, err := OpenSegment(badPath); err == nil {
		t.Fatal("bad magic should fail to open")
	}
}

func TestSegmentZoneMapSkipping(t *testing.T) {
	// With a sorted id column and block size 100, a point predicate must
	// decode exactly one of the ten sealed blocks; the scan stats make the
	// skip count directly observable.
	seg := NewSegment(Schema{{Name: "id", Type: TypeInt64}}, 100)
	b := NewBatch(seg.Schema())
	for i := 0; i < 1000; i++ {
		_ = b.AppendRow(int64(i))
	}
	_ = seg.Append(b)
	_ = seg.Seal()
	var got []int64
	var st ScanStats
	err := seg.ScanWithStats(nil, &Pred{Col: "id", Op: OpEQ, Val: int64(555)}, &st, func(b *Batch) error {
		got = append(got, b.Cols[0].Ints...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 555 {
		t.Fatalf("zone-map scan got %v", got)
	}
	if st.BlocksScanned != 1 || st.BlocksSkipped != 9 {
		t.Fatalf("zone map: scanned %d / skipped %d blocks, want 1/9", st.BlocksScanned, st.BlocksSkipped)
	}
	if st.RowsOut != 1 || st.TailRows != 0 || st.BytesRead == 0 {
		t.Fatalf("scan stats = %+v", st)
	}

	// A range predicate over the top half must skip the bottom-half blocks.
	st = ScanStats{}
	rows := 0
	err = seg.ScanWithStats(nil, &Pred{Col: "id", Op: OpGE, Val: int64(500)}, &st, func(b *Batch) error {
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 500 || st.BlocksScanned != 5 || st.BlocksSkipped != 5 {
		t.Fatalf("range scan: rows=%d scanned=%d skipped=%d", rows, st.BlocksScanned, st.BlocksSkipped)
	}
}

func TestSegmentCompressedBytes(t *testing.T) {
	seg := NewSegment(Schema{{Name: "c", Type: TypeInt64}}, 100)
	b := NewBatch(seg.Schema())
	for i := 0; i < 1000; i++ {
		_ = b.AppendRow(int64(7)) // constant → heavy RLE compression
	}
	_ = seg.Append(b)
	_ = seg.Seal()
	if seg.CompressedBytes() == 0 {
		t.Fatal("sealed segment should report nonzero bytes")
	}
	if seg.CompressedBytes() > 1000 {
		t.Fatalf("constant column should compress well, got %d bytes", seg.CompressedBytes())
	}
}

// Property: the multiset of rows out of a scan equals the rows appended,
// regardless of block size.
func TestQuickSegmentRoundTrip(t *testing.T) {
	f := func(vals []int64, blockRowsRaw uint8) bool {
		blockRows := int(blockRowsRaw%50) + 1
		seg := NewSegment(Schema{{Name: "v", Type: TypeInt64}}, blockRows)
		b := NewBatch(seg.Schema())
		for _, v := range vals {
			if err := b.AppendRow(v); err != nil {
				return false
			}
		}
		if err := seg.Append(b); err != nil {
			return false
		}
		out, err := seg.ReadAll(nil)
		if err != nil || out.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if out.Cols[0].Ints[i] != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: persist + open preserves all rows and order.
func TestQuickPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(vals []float64) bool {
		i++
		seg := NewSegment(Schema{{Name: "f", Type: TypeFloat64}}, 16)
		b := NewBatch(seg.Schema())
		for _, v := range vals {
			_ = b.AppendRow(v)
		}
		_ = seg.Append(b)
		path := filepath.Join(dir, "q", "seg.vseg")
		_ = os.MkdirAll(filepath.Dir(path), 0o755)
		if err := seg.Persist(path); err != nil {
			return false
		}
		re, err := OpenSegment(path)
		if err != nil {
			return false
		}
		out, err := re.ReadAll(nil)
		if err != nil || out.Len() != len(vals) {
			return false
		}
		return vectorsEqual(FloatVector(vals), out.Cols[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
