package colstore

import (
	"context"
	"math"
	"testing"
)

// preds covering every operator against present, absent, and boundary values.
func predsFor(col string, vals ...any) []*Pred {
	var out []*Pred
	for _, v := range vals {
		for _, op := range []CompareOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE} {
			out = append(out, &Pred{Col: col, Op: op, Val: v})
		}
	}
	return out
}

// compressedTestVectors is the shared palette of encoding-adversarial
// vectors: long runs (RLE), NaN and signed-zero runs, low-cardinality
// alternating strings (DICT), and empty blocks.
func compressedTestVectors() map[string]struct {
	vec  *Vector
	encs []Encoding
} {
	nan := math.NaN()
	return map[string]struct {
		vec  *Vector
		encs []Encoding
	}{
		"int-runs": {
			IntVector([]int64{7, 7, 7, 7, -2, -2, math.MaxInt64, math.MaxInt64, math.MaxInt64, 0}),
			[]Encoding{EncPlain, EncRLE},
		},
		"float-nan-zero-runs": {
			FloatVector([]float64{nan, nan, nan, math.Copysign(0, -1), math.Copysign(0, -1), 0.0, 0.0, 1.5, 1.5, math.Inf(1)}),
			[]Encoding{EncPlain, EncRLE},
		},
		"string-runs": {
			StringVector([]string{"blue", "blue", "blue", "", "", "red", "red", "red", "red", "zz"}),
			[]Encoding{EncPlain, EncRLE, EncDict},
		},
		"string-alternating": {
			StringVector([]string{"a", "b", "a", "b", "a", "b", "a", "b"}),
			[]Encoding{EncPlain, EncRLE, EncDict},
		},
		"bool-runs": {
			BoolVector([]bool{true, true, true, false, false, true}),
			[]Encoding{EncPlain, EncRLE},
		},
		"empty-int":    {NewVector(TypeInt64, 0), []Encoding{EncPlain, EncRLE}},
		"empty-string": {NewVector(TypeString, 0), []Encoding{EncPlain, EncRLE, EncDict}},
	}
}

func predsForVec(v *Vector) []*Pred {
	switch v.Type {
	case TypeInt64:
		// Present, absent, boundary, float-widening, and mixed-type values.
		return predsFor("c", int64(7), int64(-2), int64(5), int64(math.MaxInt64), float64(6.5), "oops")
	case TypeFloat64:
		return predsFor("c", 1.5, math.NaN(), 0.0, math.Copysign(0, -1), math.Inf(1), int64(1), true)
	case TypeString:
		return predsFor("c", "red", "", "green", "m", "zzz", int64(3))
	case TypeBool:
		return predsFor("c", true, false, int64(1))
	}
	return nil
}

// TestMatchBlockCompressedMatchesEager pins the tentpole equivalence at the
// block level: for every encoding and predicate — including values absent
// from the dictionary, NaN, signed zero, and mixed-type comparisons that must
// error — the compressed matcher returns exactly what decode-then-filter
// returns, or both fail with the same error.
func TestMatchBlockCompressedMatchesEager(t *testing.T) {
	for name, tc := range compressedTestVectors() {
		for _, enc := range tc.encs {
			data, err := EncodeBlock(tc.vec, enc)
			if err != nil {
				t.Fatalf("%s/%v encode: %v", name, enc, err)
			}
			for _, pred := range predsForVec(tc.vec) {
				wantIdx, wantErr := func() ([]int, error) {
					v, err := DecodeBlock(data)
					if err != nil {
						return nil, err
					}
					return pred.matchRowsInto(v, nil)
				}()
				gotIdx, handled, gotErr := MatchBlockCompressed(data, pred, nil)
				if enc == EncRLE && !handled {
					t.Fatalf("%s/%v: RLE block not handled compressed", name, enc)
				}
				if enc == EncDict && tc.vec.Type == TypeString && !handled {
					t.Fatalf("%s/%v: DICT block not handled compressed", name, enc)
				}
				if !handled {
					continue // PLAIN/DELTA: no compressed evaluation, eager path covers it
				}
				if (gotErr != nil) != (wantErr != nil) {
					t.Fatalf("%s/%v pred %v %v: compressed err %v, eager err %v", name, enc, pred.Op, pred.Val, gotErr, wantErr)
				}
				if wantErr != nil {
					if gotErr.Error() != wantErr.Error() {
						t.Fatalf("%s/%v pred %v %v: error %q, want %q", name, enc, pred.Op, pred.Val, gotErr, wantErr)
					}
					continue
				}
				if len(gotIdx) != len(wantIdx) {
					t.Fatalf("%s/%v pred %v %v: %d matches, want %d", name, enc, pred.Op, pred.Val, len(gotIdx), len(wantIdx))
				}
				for i := range gotIdx {
					if gotIdx[i] != wantIdx[i] {
						t.Fatalf("%s/%v pred %v %v: idx[%d] = %d, want %d", name, enc, pred.Op, pred.Val, i, gotIdx[i], wantIdx[i])
					}
				}
			}
		}
	}
}

// TestDictAbsentPushdown pins the dictionary-absent behaviors called out in
// the issue: an equality probe for a value not in the dictionary selects
// nothing (after only |dict| comparisons — no row decodes), and range
// operators land on the correct boundary rows.
func TestDictAbsentPushdown(t *testing.T) {
	v := StringVector([]string{"azul", "rot", "azul", "rot", "azul", "rot", "azul", "rot"})
	data, err := EncodeBlock(v, EncDict)
	if err != nil {
		t.Fatal(err)
	}
	idx, handled, err := MatchBlockCompressed(data, &Pred{Col: "s", Op: OpEQ, Val: "green"}, nil)
	if err != nil || !handled {
		t.Fatalf("absent equality: handled=%v err=%v", handled, err)
	}
	if len(idx) != 0 {
		t.Fatalf("equality on absent value matched %d rows, want 0", len(idx))
	}
	// "green" sorts between "azul" and "rot": < selects the azul rows (even
	// indexes), > selects the rot rows (odd indexes).
	lt, _, err := MatchBlockCompressed(data, &Pred{Col: "s", Op: OpLT, Val: "green"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gt, _, err := MatchBlockCompressed(data, &Pred{Col: "s", Op: OpGT, Val: "green"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt) != 4 || len(gt) != 4 {
		t.Fatalf("range boundary: lt=%v gt=%v, want 4 even / 4 odd rows", lt, gt)
	}
	for i, r := range lt {
		if r != 2*i {
			t.Fatalf("lt rows = %v, want even indexes", lt)
		}
	}
	for i, r := range gt {
		if r != 2*i+1 {
			t.Fatalf("gt rows = %v, want odd indexes", gt)
		}
	}
}

// TestDecodeBlockSelMatchesGather: selective decode must equal full decode +
// gather, bit-for-bit, for every encoding and selection shape (empty, all,
// sparse, duplicated indexes).
func TestDecodeBlockSelMatchesGather(t *testing.T) {
	for name, tc := range compressedTestVectors() {
		n := tc.vec.Len()
		sels := [][]int{nil, {}}
		if n > 0 {
			all := make([]int, n)
			var evens []int
			for i := 0; i < n; i++ {
				all[i] = i
				if i%2 == 0 {
					evens = append(evens, i)
				}
			}
			sels = append(sels, all, evens, []int{0, 0, n - 1, n - 1}, []int{n / 2})
		}
		for _, enc := range tc.encs {
			data, err := EncodeBlock(tc.vec, enc)
			if err != nil {
				t.Fatalf("%s/%v encode: %v", name, enc, err)
			}
			for _, sel := range sels {
				full, err := DecodeBlock(data)
				if err != nil {
					t.Fatalf("%s/%v decode: %v", name, enc, err)
				}
				want := full.Gather(sel)
				got := NewVector(tc.vec.Type, len(sel))
				if err := DecodeBlockSel(got, data, sel); err != nil {
					t.Fatalf("%s/%v sel %v: %v", name, enc, sel, err)
				}
				if !vectorsEqual(want, got) {
					t.Fatalf("%s/%v sel %v: selective decode != decode+gather", name, enc, sel)
				}
			}
		}
	}
}

// TestCompressedErrorParity: corrupt blocks are rejected with the eager
// decoder's exact error, even when the corruption lies outside the selection.
func TestCompressedErrorParity(t *testing.T) {
	v := IntVector([]int64{5, 5, 5, 5, 9, 9, 9, 9})
	data, err := EncodeBlock(v, EncRLE)
	if err != nil {
		t.Fatal(err)
	}
	sv := StringVector([]string{"x", "y", "x", "y"})
	sdata, err := EncodeBlock(sv, EncDict)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := [][]byte{
		data[:len(data)-3],   // truncated RLE value
		data[:4],             // truncated mid-header/run
		sdata[:len(sdata)-1], // truncated dict codes
		sdata[:5],            // truncated dict entries
	}
	for i, blk := range corrupt {
		_, wantErr := DecodeBlock(blk)
		if wantErr == nil {
			t.Fatalf("corrupt[%d]: eager decode accepted it", i)
		}
		pred := &Pred{Col: "c", Op: OpEQ, Val: int64(5)}
		if blk[0] == byte(TypeString) {
			pred = &Pred{Col: "c", Op: OpEQ, Val: "x"}
		}
		_, handled, gotErr := MatchBlockCompressed(blk, pred, nil)
		if handled {
			if gotErr == nil || gotErr.Error() != wantErr.Error() {
				t.Fatalf("corrupt[%d]: match err %v, want %v", i, gotErr, wantErr)
			}
		}
		selErr := DecodeBlockSel(NewVector(Type(blk[0]), 0), blk, nil)
		if selErr == nil || selErr.Error() != wantErr.Error() {
			t.Fatalf("corrupt[%d]: DecodeBlockSel err %v, want %v", i, selErr, wantErr)
		}
	}
}

// TestScanRunsMatchesScan: streaming a segment as runs reconstructs exactly
// the rows a full decode scan delivers, across mixed encodings, block
// boundaries straddled by runs, and the unsealed tail — and BlocksCompressed
// counts only blocks where every projected column streamed off its encoding.
func TestScanRunsMatchesScan(t *testing.T) {
	schema := Schema{
		{Name: "i", Type: TypeInt64},
		{Name: "f", Type: TypeFloat64},
		{Name: "s", Type: TypeString},
		{Name: "b", Type: TypeBool},
		{Name: "d", Type: TypeInt64},
	}
	seg := NewSegment(schema, 8)
	const n = 30 // 3 sealed 8-row blocks + 6-row tail
	b := NewBatch(schema)
	for r := 0; r < n; r++ {
		// Runs of 6 straddle the 8-row block boundary while keeping every
		// block at ≤2 runs so RLE wins BestEncoding; f runs include NaN and
		// -0.0; s alternates two values so DICT wins over RLE; d is
		// sequential (DELTA) to force a non-compressed cursor.
		fPalette := []float64{1.5, math.NaN(), math.Copysign(0, -1), 2.5}
		vals := []any{
			int64(r / 6),
			fPalette[(r/6)%len(fPalette)],
			[]string{"a", "b"}[r%2],
			r/6%2 == 0,
			int64(r),
		}
		for c := range vals {
			if err := b.Cols[c].AppendValue(vals[c]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		cols           []string
		wantCompressed int
	}{
		{[]string{"i", "f", "s", "b"}, 3}, // all projected columns RLE/DICT
		{[]string{"i", "d"}, 0},           // d decodes eagerly (DELTA)
		{[]string{"s"}, 3},
	} {
		var st ScanStats
		got := NewBatch(mustProjectSchema(t, schema, tc.cols))
		err := seg.ScanRuns(context.Background(), tc.cols, &st, func(vals []any, n int) error {
			for k := 0; k < n; k++ {
				for c := range vals {
					if err := got.Cols[c].AppendValue(vals[c]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cols %v: %v", tc.cols, err)
		}
		want, err := seg.ReadAll(tc.cols)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("cols %v: %d rows, want %d", tc.cols, got.Len(), want.Len())
		}
		for c := range want.Cols {
			if !vectorsEqual(want.Cols[c], got.Cols[c]) {
				t.Fatalf("cols %v: column %s differs from decode scan", tc.cols, want.Schema[c].Name)
			}
		}
		if st.BlocksScanned != 3 || st.BlocksCompressed != tc.wantCompressed || st.TailRows != 6 {
			t.Fatalf("cols %v: stats %+v, want 3 scanned / %d compressed / 6 tail", tc.cols, st, tc.wantCompressed)
		}
	}
}

func mustProjectSchema(t *testing.T, s Schema, cols []string) Schema {
	t.Helper()
	p, err := s.Project(cols)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestScanStatsDistinguishSkippedAndCompressed pins the accounting over a
// known segment: 10 constant-valued (RLE) blocks, an equality predicate that
// zone-maps rules out in 9 of them — the stats must report 9 skipped, 1
// scanned, 1 evaluated compressed, as three distinct numbers.
func TestScanStatsDistinguishSkippedAndCompressed(t *testing.T) {
	schema := Schema{{Name: "x", Type: TypeInt64}}
	seg := NewSegment(schema, 100)
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64(i / 100) // block bi holds 100 copies of bi: RLE, tight zone maps
	}
	if err := seg.Append(&Batch{Schema: schema, Cols: []*Vector{IntVector(xs)}}); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}
	var st ScanStats
	rows := 0
	err := seg.ScanWithStats([]string{"x"}, &Pred{Col: "x", Op: OpEQ, Val: int64(5)}, &st, func(b *Batch) error {
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 100 {
		t.Fatalf("rows = %d, want 100", rows)
	}
	if st.BlocksScanned != 1 || st.BlocksSkipped != 9 || st.BlocksCompressed != 1 {
		t.Fatalf("stats = %+v, want 1 scanned / 9 skipped / 1 compressed", st)
	}
	// Toggled off: same rows, same skips, but nothing evaluates compressed.
	prev := SetCompressedEval(false)
	defer SetCompressedEval(prev)
	var off ScanStats
	rows = 0
	err = seg.ScanWithStats([]string{"x"}, &Pred{Col: "x", Op: OpEQ, Val: int64(5)}, &off, func(b *Batch) error {
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 100 || off.BlocksScanned != 1 || off.BlocksSkipped != 9 || off.BlocksCompressed != 0 {
		t.Fatalf("toggled off: rows=%d stats=%+v, want 100 rows, 1/9/0", rows, off)
	}
}

// TestSetCompressedEval pins the toggle's swap semantics.
func TestSetCompressedEval(t *testing.T) {
	if !CompressedEvalEnabled() {
		t.Fatal("compressed eval should default on")
	}
	if prev := SetCompressedEval(false); !prev {
		t.Fatal("first toggle should report previous=true")
	}
	if CompressedEvalEnabled() {
		t.Fatal("toggle off did not stick")
	}
	if prev := SetCompressedEval(true); prev {
		t.Fatal("second toggle should report previous=false")
	}
	if !CompressedEvalEnabled() {
		t.Fatal("toggle back on did not stick")
	}
}
