package colstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"verticadr/internal/verr"
)

// Compressed execution ("The Vertica Analytic Database: C-Store 7 Years
// Later"): scans evaluate predicates directly on the encoded block form and
// decode only the rows that survive.
//
//   - RLE blocks compare once per run, not once per row, and emit the whole
//     run's row range on a match — O(runs) comparisons.
//   - Dictionary blocks resolve the comparison once per dictionary entry,
//     then match rows on the varint codes without materializing a single
//     string. An equality probe for a value absent from the dictionary
//     selects nothing after |dict| comparisons.
//   - Surviving rows late-materialize through DecodeBlockSel: non-predicate
//     columns decode only the selected rows instead of decode-all + gather.
//
// The compressed path must be bit-identical to decode-then-filter, including
// which inputs it rejects: every validation the eager decoder performs is
// performed here too, with the same error for the same corruption, even when
// the corruption lies outside the selected rows. The difftest and fuzz
// harnesses pin that equivalence.

// compressedEvalOff disables compressed execution when set; the zero value
// means enabled. The negative sense keeps the default on without an init.
var compressedEvalOff atomic.Bool

// SetCompressedEval toggles compressed execution (predicate evaluation on
// encoded blocks + late materialization) and returns the previous setting.
// It exists for the differential harness and benchmarks, which compare the
// compressed path against the decode-first path on identical data.
func SetCompressedEval(on bool) (prev bool) {
	return !compressedEvalOff.Swap(!on)
}

// CompressedEvalEnabled reports whether scans evaluate predicates on the
// encoded block form (the default).
func CompressedEvalEnabled() bool { return !compressedEvalOff.Load() }

// splitBlockHeader parses the [type][encoding][uvarint rows] block header.
// ok=false means the header is unusable for compressed evaluation; callers
// fall back to the eager decoder, which reports the canonical error.
func splitBlockHeader(data []byte) (typ Type, enc Encoding, n int, payload []byte, ok bool) {
	if len(data) < 3 {
		return 0, 0, 0, nil, false
	}
	typ = Type(data[0])
	switch typ {
	case TypeInt64, TypeFloat64, TypeString, TypeBool:
	default:
		return 0, 0, 0, nil, false
	}
	enc = Encoding(data[1])
	rest := data[2:]
	count, m := binary.Uvarint(rest)
	if m <= 0 || count > MaxBlockRows {
		return 0, 0, 0, nil, false
	}
	return typ, enc, int(count), rest[m:], true
}

// MatchBlockCompressed evaluates pred directly on an encoded block, returning
// the matching row indexes (appended into scratch[:0], ascending). handled is
// false when the block's encoding has no compressed evaluation (PLAIN, DELTA,
// or a malformed header) — the caller then decodes eagerly and filters with
// Pred.matchRowsInto; both routes accept and reject exactly the same blocks.
func MatchBlockCompressed(data []byte, pred *Pred, scratch []int) (idx []int, handled bool, err error) {
	typ, enc, n, rest, ok := splitBlockHeader(data)
	if !ok {
		return nil, false, nil
	}
	switch enc {
	case EncRLE:
		idx, err = matchRLERuns(typ, rest, n, pred, scratch)
		return idx, true, err
	case EncDict:
		if typ != TypeString {
			return nil, false, nil
		}
		idx, err = matchDictCodes(rest, n, pred, scratch)
		return idx, true, err
	}
	return nil, false, nil
}

// matchRLERuns walks (runlen, value) pairs, comparing each distinct value
// once. Validation mirrors decodeRLE exactly: same checks, same errors. The
// boxed comparison reproduces matchRowsInto's semantics — int/float widening,
// NaN incomparable (compares equal to everything), and the same
// cannot-compare error on mixed types, raised only when the block has rows.
func matchRLERuns(typ Type, rest []byte, n int, pred *Pred, scratch []int) ([]int, error) {
	idx := scratch[:0]
	total := 0
	for total < n {
		run, m := binary.Uvarint(rest)
		if m <= 0 {
			return nil, fmt.Errorf("colstore: truncated RLE block")
		}
		if run == 0 || run > uint64(n-total) {
			return nil, fmt.Errorf("colstore: RLE run %d exceeds remaining %d rows", run, n-total)
		}
		rest = rest[m:]
		var val any
		switch typ {
		case TypeInt64, TypeFloat64:
			if len(rest) < 8 {
				return nil, fmt.Errorf("colstore: truncated RLE value")
			}
			u := binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			if typ == TypeInt64 {
				val = int64(u)
			} else {
				val = math.Float64frombits(u)
			}
		case TypeString:
			l, m := binary.Uvarint(rest)
			if m <= 0 || uint64(len(rest)-m) < l {
				return nil, fmt.Errorf("colstore: truncated RLE string")
			}
			rest = rest[m:]
			val = string(rest[:l])
			rest = rest[l:]
		case TypeBool:
			if len(rest) < 1 {
				return nil, fmt.Errorf("colstore: truncated RLE bool")
			}
			val = rest[0] != 0
			rest = rest[1:]
		}
		c, err := CompareValues(val, pred.Val)
		if err != nil {
			return nil, err
		}
		if opMatch(pred.Op, c) {
			for r := total; r < total+int(run); r++ {
				idx = append(idx, r)
			}
		}
		total += int(run)
	}
	if total != n {
		return nil, fmt.Errorf("colstore: RLE block decoded %d rows, want %d", total, n)
	}
	return idx, nil
}

// matchDictCodes resolves the predicate once against each dictionary entry,
// then matches rows on the varint codes alone — no string is materialized
// for the row data. The code walk runs even when no entry matched (or the
// block is empty): the decode-first path validates every code, so this path
// must reject the same corrupt blocks. Entry comparisons are skipped when
// n == 0 because the eager route never evaluates a predicate over zero rows.
func matchDictCodes(rest []byte, n int, pred *Pred, scratch []int) ([]int, error) {
	idx := scratch[:0]
	dn, m := binary.Uvarint(rest)
	if m <= 0 {
		return nil, fmt.Errorf("colstore: truncated dict header")
	}
	rest = rest[m:]
	if dn > uint64(len(rest)) {
		return nil, fmt.Errorf("colstore: dict claims %d entries in %d bytes", dn, len(rest))
	}
	matched := make([]bool, dn)
	for i := uint64(0); i < dn; i++ {
		l, m := binary.Uvarint(rest)
		if m <= 0 || uint64(len(rest)-m) < l {
			return nil, fmt.Errorf("colstore: truncated dict entry")
		}
		rest = rest[m:]
		entry := rest[:l]
		rest = rest[l:]
		if n == 0 {
			continue
		}
		c, err := CompareValues(string(entry), pred.Val)
		if err != nil {
			return nil, err
		}
		if opMatch(pred.Op, c) {
			matched[i] = true
		}
	}
	for i := 0; i < n; i++ {
		c, m := binary.Uvarint(rest)
		if m <= 0 {
			return nil, fmt.Errorf("colstore: truncated dict codes")
		}
		rest = rest[m:]
		if c >= dn {
			return nil, fmt.Errorf("colstore: dict code %d out of range %d", c, int(dn))
		}
		if matched[c] {
			idx = append(idx, i)
		}
	}
	return idx, nil
}

// DecodeBlockSel decodes only the rows selected by sel (ascending block-row
// indexes, duplicates allowed) and appends them to v — the late-
// materialization form of DecodeBlockInto. It validates the entire block
// exactly as the full decoder does, so corrupt input is rejected with the
// same error even when the corruption lies past the last selected row; only
// the materialization (value appends, string allocation) is skipped.
func DecodeBlockSel(v *Vector, data []byte, sel []int) error {
	if len(data) < 3 {
		return fmt.Errorf("colstore: block too short (%d bytes)", len(data))
	}
	typ := Type(data[0])
	switch typ {
	case TypeInt64, TypeFloat64, TypeString, TypeBool:
	default:
		return fmt.Errorf("colstore: unknown type byte %d", data[0])
	}
	if typ != v.Type {
		return fmt.Errorf("colstore: decode %v block into %v vector", typ, v.Type)
	}
	enc := Encoding(data[1])
	rest := data[2:]
	count, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("colstore: corrupt block header")
	}
	if count > MaxBlockRows {
		return fmt.Errorf("colstore: block claims %d rows (max %d)", count, MaxBlockRows)
	}
	rest = rest[m:]
	n := int(count)
	if len(sel) > 0 && (sel[0] < 0 || sel[len(sel)-1] >= n) {
		return fmt.Errorf("colstore: selection index %d out of range %d rows", sel[len(sel)-1], n)
	}
	switch enc {
	case EncPlain:
		return decodePlainSel(v, rest, n, sel)
	case EncRLE:
		return decodeRLESel(v, rest, n, sel)
	case EncDelta:
		return decodeDeltaSel(v, rest, n, sel)
	case EncDict:
		return decodeDictSel(v, rest, n, sel)
	default:
		return fmt.Errorf("colstore: unknown encoding byte %d", data[1])
	}
}

func decodePlainSel(v *Vector, rest []byte, n int, sel []int) error {
	switch v.Type {
	case TypeInt64, TypeFloat64:
		if len(rest) < 8*n {
			return fmt.Errorf("colstore: truncated plain block")
		}
		// Fixed-width payload: selected rows decode by random access.
		for _, i := range sel {
			u := binary.LittleEndian.Uint64(rest[i*8:])
			if v.Type == TypeInt64 {
				v.Ints = append(v.Ints, int64(u))
			} else {
				v.Floats = append(v.Floats, math.Float64frombits(u))
			}
		}
	case TypeString:
		si := 0
		for i := 0; i < n; i++ {
			l, m := binary.Uvarint(rest)
			if m <= 0 || uint64(len(rest)-m) < l {
				return fmt.Errorf("colstore: truncated string block")
			}
			rest = rest[m:]
			for si < len(sel) && sel[si] == i {
				v.Strs = append(v.Strs, string(rest[:l]))
				si++
			}
			rest = rest[l:]
		}
	case TypeBool:
		if len(rest) < n {
			return fmt.Errorf("colstore: truncated bool block")
		}
		for _, i := range sel {
			v.Bools = append(v.Bools, rest[i] != 0)
		}
	default:
		return fmt.Errorf("colstore: decode invalid type %v", v.Type)
	}
	return nil
}

func decodeRLESel(v *Vector, rest []byte, n int, sel []int) error {
	total := 0
	si := 0
	for total < n {
		run, m := binary.Uvarint(rest)
		if m <= 0 {
			return fmt.Errorf("colstore: truncated RLE block")
		}
		if run == 0 || run > uint64(n-total) {
			return fmt.Errorf("colstore: RLE run %d exceeds remaining %d rows", run, n-total)
		}
		rest = rest[m:]
		end := total + int(run)
		switch v.Type {
		case TypeInt64, TypeFloat64:
			if len(rest) < 8 {
				return fmt.Errorf("colstore: truncated RLE value")
			}
			u := binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
			for si < len(sel) && sel[si] < end {
				if v.Type == TypeInt64 {
					v.Ints = append(v.Ints, int64(u))
				} else {
					v.Floats = append(v.Floats, math.Float64frombits(u))
				}
				si++
			}
		case TypeString:
			l, m := binary.Uvarint(rest)
			if m <= 0 || uint64(len(rest)-m) < l {
				return fmt.Errorf("colstore: truncated RLE string")
			}
			rest = rest[m:]
			raw := rest[:l]
			rest = rest[l:]
			// Materialize the run's string once, and only if a row wants it.
			if si < len(sel) && sel[si] < end {
				s := string(raw)
				for si < len(sel) && sel[si] < end {
					v.Strs = append(v.Strs, s)
					si++
				}
			}
		case TypeBool:
			if len(rest) < 1 {
				return fmt.Errorf("colstore: truncated RLE bool")
			}
			b := rest[0] != 0
			rest = rest[1:]
			for si < len(sel) && sel[si] < end {
				v.Bools = append(v.Bools, b)
				si++
			}
		default:
			return fmt.Errorf("colstore: decode invalid type %v", v.Type)
		}
		total = end
	}
	if total != n {
		return fmt.Errorf("colstore: RLE block decoded %d rows, want %d", total, n)
	}
	return nil
}

func decodeDeltaSel(v *Vector, rest []byte, n int, sel []int) error {
	if v.Type != TypeInt64 {
		return fmt.Errorf("colstore: DELTA block with type %v", v.Type)
	}
	// Delta is a prefix sum: every varint decodes, only selected rows append.
	prev := int64(0)
	si := 0
	for i := 0; i < n; i++ {
		d, m := binary.Varint(rest)
		if m <= 0 {
			return fmt.Errorf("colstore: truncated delta block")
		}
		rest = rest[m:]
		prev += d
		for si < len(sel) && sel[si] == i {
			v.Ints = append(v.Ints, prev)
			si++
		}
	}
	return nil
}

func decodeDictSel(v *Vector, rest []byte, n int, sel []int) error {
	if v.Type != TypeString {
		return fmt.Errorf("colstore: DICT block with type %v", v.Type)
	}
	dn, m := binary.Uvarint(rest)
	if m <= 0 {
		return fmt.Errorf("colstore: truncated dict header")
	}
	rest = rest[m:]
	if dn > uint64(len(rest)) {
		return fmt.Errorf("colstore: dict claims %d entries in %d bytes", dn, len(rest))
	}
	dict := make([]string, 0, dn)
	for i := uint64(0); i < dn; i++ {
		l, m := binary.Uvarint(rest)
		if m <= 0 || uint64(len(rest)-m) < l {
			return fmt.Errorf("colstore: truncated dict entry")
		}
		rest = rest[m:]
		dict = append(dict, string(rest[:l]))
		rest = rest[l:]
	}
	si := 0
	for i := 0; i < n; i++ {
		c, m := binary.Uvarint(rest)
		if m <= 0 {
			return fmt.Errorf("colstore: truncated dict codes")
		}
		rest = rest[m:]
		if c >= uint64(len(dict)) {
			return fmt.Errorf("colstore: dict code %d out of range %d", c, len(dict))
		}
		for si < len(sel) && sel[si] == i {
			v.Strs = append(v.Strs, dict[c])
			si++
		}
	}
	return nil
}

// runCursor streams one column's block as (value, run-length) pairs. RLE
// blocks stream their native runs straight off the encoded bytes; DICT blocks
// coalesce consecutive equal codes into runs sharing one dictionary string;
// PLAIN and DELTA blocks fall back to a full decode delivering unit runs.
type runCursor struct {
	mode    uint8 // one of curRLE, curDict, curVec
	typ     Type
	rest    []byte // remaining encoded payload (RLE runs or DICT codes)
	rows    int    // header row count
	emitted int    // rows handed out so far
	runLeft int    // rows remaining in the loaded run
	val     any    // the loaded run's value

	dict []string // DICT: decoded dictionary
	read int      // DICT: codes consumed from rest

	vec *Vector // curVec: eagerly decoded column
}

const (
	curRLE uint8 = iota
	curDict
	curVec
)

// newRunCursor opens a cursor over one encoded block. compressed reports
// whether the block streams off its encoded form (RLE/DICT) rather than
// through an eager decode.
func newRunCursor(data []byte) (*runCursor, bool, error) {
	typ, enc, n, rest, ok := splitBlockHeader(data)
	if ok {
		switch {
		case enc == EncRLE:
			return &runCursor{mode: curRLE, typ: typ, rest: rest, rows: n}, true, nil
		case enc == EncDict && typ == TypeString:
			c := &runCursor{mode: curDict, typ: typ, rows: n}
			dn, m := binary.Uvarint(rest)
			if m <= 0 {
				return nil, false, fmt.Errorf("colstore: truncated dict header")
			}
			rest = rest[m:]
			if dn > uint64(len(rest)) {
				return nil, false, fmt.Errorf("colstore: dict claims %d entries in %d bytes", dn, len(rest))
			}
			for i := uint64(0); i < dn; i++ {
				l, m := binary.Uvarint(rest)
				if m <= 0 || uint64(len(rest)-m) < l {
					return nil, false, fmt.Errorf("colstore: truncated dict entry")
				}
				rest = rest[m:]
				c.dict = append(c.dict, string(rest[:l]))
				rest = rest[l:]
			}
			c.rest = rest
			return c, true, nil
		}
	}
	v, err := DecodeBlock(data)
	if err != nil {
		return nil, false, err
	}
	return &runCursor{mode: curVec, typ: v.Type, rows: v.Len(), vec: v}, false, nil
}

// load ensures the cursor has a current run (runLeft > 0), reading the next
// one when drained. Validation mirrors the eager decoders.
func (c *runCursor) load() error {
	if c.runLeft > 0 {
		return nil
	}
	switch c.mode {
	case curVec:
		c.val = c.vec.Value(c.emitted)
		c.runLeft = 1
	case curRLE:
		run, m := binary.Uvarint(c.rest)
		if m <= 0 {
			return fmt.Errorf("colstore: truncated RLE block")
		}
		if run == 0 || run > uint64(c.rows-c.emitted) {
			return fmt.Errorf("colstore: RLE run %d exceeds remaining %d rows", run, c.rows-c.emitted)
		}
		c.rest = c.rest[m:]
		switch c.typ {
		case TypeInt64, TypeFloat64:
			if len(c.rest) < 8 {
				return fmt.Errorf("colstore: truncated RLE value")
			}
			u := binary.LittleEndian.Uint64(c.rest)
			c.rest = c.rest[8:]
			if c.typ == TypeInt64 {
				c.val = int64(u)
			} else {
				c.val = math.Float64frombits(u)
			}
		case TypeString:
			l, m := binary.Uvarint(c.rest)
			if m <= 0 || uint64(len(c.rest)-m) < l {
				return fmt.Errorf("colstore: truncated RLE string")
			}
			c.rest = c.rest[m:]
			c.val = string(c.rest[:l])
			c.rest = c.rest[l:]
		case TypeBool:
			if len(c.rest) < 1 {
				return fmt.Errorf("colstore: truncated RLE bool")
			}
			c.val = c.rest[0] != 0
			c.rest = c.rest[1:]
		}
		c.runLeft = int(run)
	case curDict:
		code, m := binary.Uvarint(c.rest)
		if m <= 0 {
			return fmt.Errorf("colstore: truncated dict codes")
		}
		if code >= uint64(len(c.dict)) {
			return fmt.Errorf("colstore: dict code %d out of range %d", code, len(c.dict))
		}
		c.rest = c.rest[m:]
		c.read++
		c.runLeft = 1
		c.val = c.dict[code]
		// Coalesce consecutive equal codes into one run of the same string.
		for c.read < c.rows {
			next, m := binary.Uvarint(c.rest)
			if m <= 0 || next != code {
				break
			}
			c.rest = c.rest[m:]
			c.read++
			c.runLeft++
		}
	}
	return nil
}

// advance consumes n rows of the current run.
func (c *runCursor) advance(n int) {
	c.runLeft -= n
	c.emitted += n
}

// ScanRuns streams the named columns (nil = all) through fn as runs: vals[i]
// holds cols[i]'s value, constant for the next n rows. RLE and dictionary
// blocks deliver their runs without decoding to vectors, so run-aware
// consumers (aggregates that multiply by run length) do O(runs) work; other
// encodings and the unsealed tail deliver unit runs. Run boundaries are the
// intersection of the per-column runs, so a delivered run is constant in
// every projected column. vals is reused across calls — fn must not retain
// it. Stats: BlocksCompressed counts blocks where every projected column
// streamed off its encoded form.
func (s *Segment) ScanRuns(ctx context.Context, cols []string, st *ScanStats, fn func(vals []any, n int) error) error {
	var local ScanStats
	if st == nil {
		st = &local
	}
	defer recordScanTelemetry(st)
	plan, err := s.planScan(cols, nil)
	if err != nil {
		return err
	}
	nc := len(plan.colIdx)
	vals := make([]any, nc)
	cursors := make([]*runCursor, nc)
	for bi := 0; bi < plan.nblocks; bi++ {
		if err := verr.Canceled(ctx.Err()); err != nil {
			return err
		}
		st.BlocksScanned++
		rows := 0
		allCompressed := true
		for i, ci := range plan.colIdx {
			ref := s.sealed[ci][bi]
			st.BytesRead += len(ref.data)
			cur, compressed, err := newRunCursor(ref.data)
			if err != nil {
				return err
			}
			cursors[i] = cur
			if !compressed {
				allCompressed = false
			}
			rows = cur.rows
		}
		if allCompressed && nc > 0 {
			st.BlocksCompressed++
		}
		pos := 0
		for pos < rows {
			run := rows - pos
			for i, cur := range cursors {
				if err := cur.load(); err != nil {
					return err
				}
				if cur.runLeft < run {
					run = cur.runLeft
				}
				vals[i] = cur.val
			}
			st.RowsOut += run
			if err := fn(vals, run); err != nil {
				return err
			}
			for _, cur := range cursors {
				cur.advance(run)
			}
			pos += run
		}
	}
	if err := verr.Canceled(ctx.Err()); err != nil {
		return err
	}
	// Unsealed tail: deliver unit runs straight from the in-memory batch.
	if s.tail.Len() > 0 {
		st.TailRows += s.tail.Len()
		for r := 0; r < s.tail.Len(); r++ {
			for i, ci := range plan.colIdx {
				vals[i] = s.tail.Cols[ci].Value(r)
			}
			st.RowsOut++
			if err := fn(vals, 1); err != nil {
				return err
			}
		}
	}
	return nil
}
