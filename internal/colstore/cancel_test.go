package colstore

import (
	"context"
	"errors"
	"testing"

	"verticadr/internal/parallel"
	"verticadr/internal/verr"
)

// A canceled scan must stop within one storage block: cancellation is
// checked before every block decode, so after cancel() fires inside a
// delivery callback, no further batch may be delivered.
func TestScanCancelStopsWithinOneBlock(t *testing.T) {
	const blockRows, blocks = 64, 40
	seg := NewSegment(Schema{{Name: "x", Type: TypeFloat64}}, blockRows)
	b := NewBatch(seg.Schema())
	for i := 0; i < blockRows*blocks; i++ {
		if err := b.AppendRow(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	err := seg.ScanWithStatsCtx(ctx, []string{"x"}, nil, nil, func(batch *Batch) error {
		delivered++
		cancel() // cancel during the first delivery
		return nil
	})
	if !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("err = %v, want verr.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also match context.Canceled", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d batches after cancel, want exactly 1 (the one that canceled)", delivered)
	}
}

// The parallel scan also observes cancellation: already-scheduled blocks may
// finish decoding, but in-order delivery stops and the scan returns the
// typed error.
func TestParScanCancelReturnsTypedError(t *testing.T) {
	const blockRows, blocks = 64, 40
	seg := NewSegment(Schema{{Name: "x", Type: TypeFloat64}}, blockRows)
	b := NewBatch(seg.Schema())
	for i := 0; i < blockRows*blocks; i++ {
		if err := b.AppendRow(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := seg.Seal(); err != nil {
		t.Fatal(err)
	}

	pool := parallel.NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var deliveredAfterCancel int
	canceled := false
	err := seg.ParScanWithStatsCtx(ctx, []string{"x"}, nil, pool, nil, func(batch *Batch) error {
		if canceled {
			deliveredAfterCancel++
		}
		canceled = true
		cancel()
		return nil
	})
	if !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("err = %v, want verr.ErrCanceled", err)
	}
	if deliveredAfterCancel != 0 {
		t.Fatalf("%d batches delivered after cancel, want 0", deliveredAfterCancel)
	}
}
