package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("got %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatalf("Set did not stick")
	}
	if got := m.Row(1); got[0] != 4 || got[2] != 6 {
		t.Fatalf("Row(1)=%v", got)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty input should give 0x0, got %dx%d", m.Rows, m.Cols)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("mul (%d,%d)=%v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("mulvec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestAddScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{3, 4}})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || a.At(0, 1) != 6 {
		t.Fatalf("add = %v", a.Data)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 2 || a.At(0, 1) != 3 {
		t.Fatalf("scale = %v", a.Data)
	}
	if err := a.Add(NewMatrix(2, 2)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2]
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := CholeskySolve(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1.5, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("cholesky solution %v", x)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := CholeskySolve(a, []float64{1, 1}); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square nonsingular system: exact solve.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := QRSolve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Fatalf("qr solution %v", x)
	}
}

func TestQRSolveLeastSquares(t *testing.T) {
	// Overdetermined: fit y = 2x + 1 through noiseless points.
	rows := [][]float64{}
	var ys []float64
	for i := 0; i < 20; i++ {
		x := float64(i)
		rows = append(rows, []float64{1, x})
		ys = append(ys, 1+2*x)
	}
	a, _ := FromRows(rows)
	beta, err := QRSolve(a, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 1, 1e-9) || !almostEq(beta[1], 2, 1e-9) {
		t.Fatalf("qr least squares %v", beta)
	}
}

func TestQRUnderdetermined(t *testing.T) {
	a := NewMatrix(1, 3)
	if _, err := QRSolve(a, []float64{1}); err == nil {
		t.Fatal("expected underdetermined error")
	}
}

// Property: Cholesky and QR agree on random SPD systems.
func TestQuickCholeskyQRAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		// Build SPD A = MᵀM + I.
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		a, _ := m.T().Mul(m)
		a.AddRidge(1)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err1 := CholeskySolve(a, b)
		x2, err2 := QRSolve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if !almostEq(x1[i], x2[i], 1e-6*(1+math.Abs(x1[i]))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: solving then multiplying recovers b.
func TestQuickCholeskyResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		a, _ := m.T().Mul(m)
		a.AddRidge(0.5)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := CholeskySolve(a, b)
		if err != nil {
			return false
		}
		got, _ := a.MulVec(x)
		for i := range b {
			if !almostEq(got[i], b[i], 1e-7*(1+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotNormSqDist(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("dot")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("norm2")
	}
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("sqdist")
	}
}

func TestSymmetrize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {4, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("symmetrize = %v", m.Data)
	}
}

func TestAddRidge(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddRidge(2.5)
	if m.At(0, 0) != 2.5 || m.At(1, 1) != 2.5 || m.At(0, 1) != 0 {
		t.Fatalf("ridge = %v", m.Data)
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares backing array")
	}
}
