// Package linalg provides the small dense linear-algebra substrate used by
// the distributed machine-learning algorithms (GLM via Newton–Raphson, linear
// regression, K-means) and by the single-threaded R baseline (QR
// decomposition). Matrices are row-major and sized for model dimensions
// (typically ≤ a few hundred columns), not for bulk data.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"verticadr/internal/parallel"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged input: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add accumulates other into m element-wise. Dimensions must match.
func (m *Matrix) Add(other *Matrix) error {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return fmt.Errorf("linalg: add dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
	return nil
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// mulParThreshold is the flop count (rows × cols × ocols) above which Mul
// row-blocks across the worker pool. Output rows are disjoint and each row's
// inner arithmetic is untouched, so the parallel product is bit-identical to
// the serial one; below the threshold the goroutine overhead isn't worth it.
const mulParThreshold = 1 << 16

// Mul returns m × other. Large products compute row blocks on the process
// worker pool; the result is bitwise identical at every degree.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("linalg: mul dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	mulRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mrow := m.Row(i)
			orow := out.Row(i)
			for k := 0; k < m.Cols; k++ {
				a := mrow[k]
				if a == 0 {
					continue
				}
				brow := other.Row(k)
				for j := range orow {
					orow[j] += a * brow[j]
				}
			}
		}
	}
	pool := parallel.Default()
	deg := pool.Degree()
	if deg <= 1 || m.Rows < 2 || m.Rows*m.Cols*other.Cols < mulParThreshold {
		mulRows(0, m.Rows)
		return out, nil
	}
	if deg > m.Rows {
		deg = m.Rows
	}
	blk := (m.Rows + deg - 1) / deg
	nblocks := (m.Rows + blk - 1) / blk
	err := pool.ForEach(nblocks, func(bi int) error {
		lo := bi * blk
		hi := lo + blk
		if hi > m.Rows {
			hi = m.Rows
		}
		mulRows(lo, hi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MulVec returns m × v as a new vector.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("linalg: mulvec dimension mismatch %dx%d × %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out, nil
}

// Dot returns the inner product of a and b; the slices must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ErrNotPositiveDefinite is returned by CholeskySolve when the system matrix
// is singular or not positive definite (e.g. collinear features).
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// CholeskySolve solves A·x = b for symmetric positive-definite A, in-place
// factoring a copy of A. This is the solver used by the Newton–Raphson GLM
// step (A = XᵀWX, b = XᵀWz).
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: cholesky needs square matrix, got %dx%d", n, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: cholesky rhs length %d, want %d", len(b), n)
	}
	l := a.Clone()
	// Factor: L lower-triangular with A = L·Lᵀ.
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// QRSolve solves the least-squares problem min ‖A·x − b‖₂ via Householder QR.
// It is deliberately the textbook dense decomposition: the paper notes that
// stock R implements lm() this way, while Distributed R uses Newton–Raphson;
// the single-threaded baseline (internal/rbaseline) calls this.
func QRSolve(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: qr rhs length %d, want %d", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: qr underdetermined system %dx%d", m, n)
	}
	r := a.Clone()
	rhs := make([]float64, m)
	copy(rhs, b)
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, errors.New("linalg: rank-deficient matrix in QR")
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		v[0] -= norm
		vnorm := Norm2(v)
		if vnorm == 0 {
			continue
		}
		for i := range v {
			v[i] /= vnorm
		}
		// Apply H = I − 2vvᵀ to remaining columns of R and to rhs.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-2*dot*v[i-k])
			}
		}
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i-k] * rhs[i]
		}
		for i := k; i < m; i++ {
			rhs[i] -= 2 * dot * v[i-k]
		}
	}
	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, errors.New("linalg: singular R in QR back substitution")
		}
		x[i] = s / d
	}
	return x, nil
}

// Symmetrize averages m with its transpose in place (guards accumulated
// floating-point asymmetry before a Cholesky factorization).
func (m *Matrix) Symmetrize() {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// AddRidge adds lambda to the diagonal (Tikhonov regularization; also used to
// nudge nearly singular normal equations to positive definiteness).
func (m *Matrix) AddRidge(lambda float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+lambda)
	}
}
