package linalg

import (
	"math"
	"math/rand"
	"testing"

	"verticadr/internal/parallel"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = 0 // exercise the zero-skip fast path
		default:
			m.Data[i] = rng.NormFloat64() * math.Pow(2, float64(rng.Intn(40)-20))
		}
	}
	return m
}

// naiveMul is the reference triple loop in canonical i/j/k order.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestMulMatchesNaive checks Mul against the reference triple loop. The two
// walk the k dimension in the same order per output cell, so even float
// results must agree exactly; sizes straddle the parallel threshold.
func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {17, 9, 13}, {64, 64, 64}, {50, 128, 70}}
	for _, deg := range []int{1, 2, 4, 8} {
		parallel.SetDefaultDegree(deg)
		for _, s := range shapes {
			a := randMatrix(rng, s[0], s[1])
			b := randMatrix(rng, s[1], s[2])
			got, err := a.Mul(b)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveMul(a, b)
			for i := range want.Data {
				if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
					t.Fatalf("degree %d shape %v: element %d is %v, want %v", deg, s, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
	parallel.SetDefaultDegree(0)
}

// TestMulBitIdenticalAcrossDegrees pins the parallel product to the serial
// one bitwise on a matrix large enough to cross mulParThreshold.
func TestMulBitIdenticalAcrossDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 120, 80)
	b := randMatrix(rng, 80, 90)
	parallel.SetDefaultDegree(1)
	want, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, deg := range []int{2, 4, 8} {
		parallel.SetDefaultDegree(deg)
		got, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("degree %d: element %d differs", deg, i)
			}
		}
	}
	parallel.SetDefaultDegree(0)
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
