// Package udf is the user-defined function framework of the Vertica
// substitute. The paper's integration is built almost entirely out of UDFs:
// ExportToDistributedR performs the fast-transfer export (§3, Fig. 4), and
// KmeansPredict / GlmPredict / RfPredict run in-database prediction (§5).
// Transform functions (UDTFs) process one table partition at a time and are
// invoked with Vertica's OVER (PARTITION BY ... | PARTITION BEST) syntax;
// the query planner spawns one instance per partition, in parallel.
package udf

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"verticadr/internal/colstore"
)

// Params is the USING PARAMETERS key-value list, with lower-cased keys.
type Params map[string]any

// String fetches a required string parameter.
func (p Params) String(key string) (string, error) {
	v, ok := p[key]
	if !ok {
		return "", fmt.Errorf("udf: missing required parameter %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("udf: parameter %q must be a string, got %T", key, v)
	}
	return s, nil
}

// StringOr fetches an optional string parameter with a default.
func (p Params) StringOr(key, def string) string {
	if s, err := p.String(key); err == nil {
		return s
	}
	return def
}

// Int fetches a required integer parameter (accepting float64 with integral
// value, since SQL literals may arrive either way).
func (p Params) Int(key string) (int64, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("udf: missing required parameter %q", key)
	}
	switch x := v.(type) {
	case int64:
		return x, nil
	case float64:
		if x == float64(int64(x)) {
			return int64(x), nil
		}
	}
	return 0, fmt.Errorf("udf: parameter %q must be an integer, got %v", key, v)
}

// IntOr fetches an optional integer parameter with a default.
func (p Params) IntOr(key string, def int64) int64 {
	if n, err := p.Int(key); err == nil {
		return n
	}
	return def
}

// Ctx is the execution context handed to each transform-function instance.
type Ctx struct {
	Params   Params
	NodeID   int // database node this instance runs on
	NumNodes int
	Instance int // instance index within the node (0-based)
	// Services exposes database-side extension points by name (for example
	// "dfs" → the node's distributed-file-system client, "models" → the model
	// manager). UDFs type-assert what they need.
	Services map[string]any
}

// Service fetches a named service or errors with a helpful message.
func (c *Ctx) Service(name string) (any, error) {
	if c.Services == nil {
		return nil, fmt.Errorf("udf: no services available (wanted %q)", name)
	}
	s, ok := c.Services[name]
	if !ok {
		return nil, fmt.Errorf("udf: service %q not registered", name)
	}
	return s, nil
}

// BatchReader streams a partition's rows to the UDF. Next returns nil at the
// end of the partition. The returned batch is only valid until the next Next
// call — readers may reuse the batch and its column headers; a UDF that
// needs rows later must copy them.
type BatchReader interface {
	Next() (*colstore.Batch, error)
}

// BatchWriter receives the UDF's output rows. Write retains the batch: the
// caller must hand over ownership and not modify it afterwards.
type BatchWriter interface {
	Write(*colstore.Batch) error
}

// ReusableWriter is an optional BatchWriter extension for pooled output
// batches: WriteReusable consumes the rows synchronously (copying what it
// keeps), so when it returns the caller may reset and reuse the batch and
// its backing arrays. Writers that retain batches (CollectWriter) must not
// implement it.
type ReusableWriter interface {
	WriteReusable(*colstore.Batch) error
}

// WriteMaybeReuse writes b through w, preferring the reusable path. The
// returned bool reports whether the caller still owns b (true: reuse away;
// false: w retained it and the caller must allocate a fresh batch).
func WriteMaybeReuse(w BatchWriter, b *colstore.Batch) (bool, error) {
	if rw, ok := w.(ReusableWriter); ok {
		return true, rw.WriteReusable(b)
	}
	return false, w.Write(b)
}

// Transform is a user-defined transform function (Vertica UDTF).
type Transform interface {
	// OutputSchema resolves the output schema given the input schema (the
	// UDTF's argument columns, in call order) and parameters.
	OutputSchema(in colstore.Schema, params Params) (colstore.Schema, error)
	// ProcessPartition consumes one partition and writes output rows.
	ProcessPartition(ctx *Ctx, in BatchReader, out BatchWriter) error
}

// Factory creates a fresh Transform instance (one per partition/instance).
type Factory func() Transform

// Registry maps function names to factories. A Registry is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Factory)}
}

// Register adds a transform factory under a case-insensitive name.
func (r *Registry) Register(name string, f Factory) error {
	key := strings.ToUpper(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[key]; ok {
		return fmt.Errorf("udf: function %q already registered", name)
	}
	r.funcs[key] = f
	return nil
}

// MustRegister registers or panics; for init-time wiring.
func (r *Registry) MustRegister(name string, f Factory) {
	if err := r.Register(name, f); err != nil {
		panic(err)
	}
}

// Lookup finds a factory by case-insensitive name.
func (r *Registry) Lookup(name string) (Factory, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("udf: unknown function %q", name)
	}
	return f, nil
}

// Names lists registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SliceReader adapts an in-memory batch list to a BatchReader.
type SliceReader struct {
	batches []*colstore.Batch
	i       int
}

// NewSliceReader wraps batches.
func NewSliceReader(batches ...*colstore.Batch) *SliceReader {
	return &SliceReader{batches: batches}
}

// Next implements BatchReader.
func (s *SliceReader) Next() (*colstore.Batch, error) {
	if s.i >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.i]
	s.i++
	return b, nil
}

// CollectWriter accumulates written batches in memory.
type CollectWriter struct {
	mu      sync.Mutex
	Batches []*colstore.Batch
}

// Write implements BatchWriter.
func (c *CollectWriter) Write(b *colstore.Batch) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("udf: output batch invalid: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Batches = append(c.Batches, b)
	return nil
}

// Result merges everything written into one batch (empty batch if none).
func (c *CollectWriter) Result(schema colstore.Schema) (*colstore.Batch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := colstore.NewBatch(schema)
	for _, b := range c.Batches {
		if err := out.AppendBatch(b); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AppendWriter accumulates written rows by value into one owned batch. It
// implements ReusableWriter (every write copies), making it the natural
// sink for UDFs that score into pooled batches. Not safe for concurrent
// use: give each partition its own AppendWriter and merge the results in
// partition order for deterministic output.
type AppendWriter struct {
	Out *colstore.Batch
}

// NewAppendWriter returns a writer accumulating into an empty batch of the
// given schema.
func NewAppendWriter(schema colstore.Schema) *AppendWriter {
	return &AppendWriter{Out: colstore.NewBatch(schema)}
}

// Write implements BatchWriter; the batch is copied, never retained.
func (a *AppendWriter) Write(b *colstore.Batch) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("udf: output batch invalid: %w", err)
	}
	return a.Out.AppendBatch(b)
}

// WriteReusable implements ReusableWriter: identical to Write, because Write
// already copies.
func (a *AppendWriter) WriteReusable(b *colstore.Batch) error { return a.Write(b) }

// FuncWriter adapts a function to a BatchWriter.
type FuncWriter func(*colstore.Batch) error

// Write implements BatchWriter.
func (f FuncWriter) Write(b *colstore.Batch) error { return f(b) }
