package udf

import (
	"errors"
	"testing"

	"verticadr/internal/colstore"
)

// doubler is a trivial transform that doubles a single float column.
type doubler struct{}

func (doubler) OutputSchema(in colstore.Schema, _ Params) (colstore.Schema, error) {
	if len(in) != 1 || in[0].Type != colstore.TypeFloat64 {
		return nil, errors.New("doubler wants one FLOAT column")
	}
	return colstore.Schema{{Name: "doubled", Type: colstore.TypeFloat64}}, nil
}

func (doubler) ProcessPartition(ctx *Ctx, in BatchReader, out BatchWriter) error {
	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		vals := make([]float64, b.Len())
		for i, v := range b.Cols[0].Floats {
			vals[i] = v * 2
		}
		ob := &colstore.Batch{
			Schema: colstore.Schema{{Name: "doubled", Type: colstore.TypeFloat64}},
			Cols:   []*colstore.Vector{colstore.FloatVector(vals)},
		}
		if err := out.Write(ob); err != nil {
			return err
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("MyFunc", func() Transform { return doubler{} }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("myfunc", func() Transform { return doubler{} }); err == nil {
		t.Fatal("case-insensitive duplicate should fail")
	}
	f, err := r.Lookup("MYFUNC")
	if err != nil || f == nil {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Fatal("unknown lookup should fail")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "MYFUNC" {
		t.Fatalf("names = %v", names)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("f", func() Transform { return doubler{} })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate MustRegister")
		}
	}()
	r.MustRegister("f", func() Transform { return doubler{} })
}

func TestTransformEndToEnd(t *testing.T) {
	schema := colstore.Schema{{Name: "x", Type: colstore.TypeFloat64}}
	b1 := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.FloatVector([]float64{1, 2})}}
	b2 := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.FloatVector([]float64{3})}}
	var d doubler
	outSchema, err := d.OutputSchema(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &CollectWriter{}
	if err := d.ProcessPartition(&Ctx{}, NewSliceReader(b1, b2), w); err != nil {
		t.Fatal(err)
	}
	res, err := w.Result(outSchema)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	if res.Len() != 3 {
		t.Fatalf("got %d rows", res.Len())
	}
	for i, v := range want {
		if res.Cols[0].Floats[i] != v {
			t.Fatalf("row %d = %v want %v", i, res.Cols[0].Floats[i], v)
		}
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{"model": "rModel", "k": int64(3), "frac": 2.0, "bad": 1.5}
	if s, err := p.String("model"); err != nil || s != "rModel" {
		t.Fatalf("String: %v %v", s, err)
	}
	if _, err := p.String("missing"); err == nil {
		t.Fatal("missing string should fail")
	}
	if _, err := p.String("k"); err == nil {
		t.Fatal("wrong-type string should fail")
	}
	if p.StringOr("missing", "d") != "d" {
		t.Fatal("StringOr default")
	}
	if n, err := p.Int("k"); err != nil || n != 3 {
		t.Fatalf("Int: %v %v", n, err)
	}
	if n, err := p.Int("frac"); err != nil || n != 2 {
		t.Fatalf("integral float should coerce: %v %v", n, err)
	}
	if _, err := p.Int("bad"); err == nil {
		t.Fatal("non-integral float should fail")
	}
	if _, err := p.Int("missing"); err == nil {
		t.Fatal("missing int should fail")
	}
	if p.IntOr("missing", 9) != 9 {
		t.Fatal("IntOr default")
	}
}

func TestCtxService(t *testing.T) {
	c := &Ctx{Services: map[string]any{"dfs": 42}}
	v, err := c.Service("dfs")
	if err != nil || v != 42 {
		t.Fatalf("service: %v %v", v, err)
	}
	if _, err := c.Service("nope"); err == nil {
		t.Fatal("unknown service should fail")
	}
	empty := &Ctx{}
	if _, err := empty.Service("dfs"); err == nil {
		t.Fatal("nil services should fail")
	}
}

func TestCollectWriterValidates(t *testing.T) {
	w := &CollectWriter{}
	bad := &colstore.Batch{
		Schema: colstore.Schema{{Name: "x", Type: colstore.TypeFloat64}},
		Cols:   []*colstore.Vector{colstore.IntVector([]int64{1})},
	}
	if err := w.Write(bad); err == nil {
		t.Fatal("invalid batch should be rejected")
	}
}

func TestFuncWriter(t *testing.T) {
	var got int
	w := FuncWriter(func(b *colstore.Batch) error { got += b.Len(); return nil })
	schema := colstore.Schema{{Name: "x", Type: colstore.TypeFloat64}}
	b := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.FloatVector([]float64{1, 2})}}
	if err := w.Write(b); err != nil || got != 2 {
		t.Fatalf("funcwriter: %v %d", err, got)
	}
}

func TestSliceReaderExhaustion(t *testing.T) {
	r := NewSliceReader()
	b, err := r.Next()
	if b != nil || err != nil {
		t.Fatal("empty reader should return nil, nil")
	}
}

func TestAppendWriterCopiesAndReuses(t *testing.T) {
	schema := colstore.Schema{{Name: "p", Type: colstore.TypeFloat64}}
	w := NewAppendWriter(schema)
	preds := []float64{1.5, 2.5}
	b := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.FloatVector(preds)}}

	reused, err := WriteMaybeReuse(w, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("AppendWriter implements ReusableWriter; caller should keep ownership")
	}
	// Caller reuses the same backing array for the next block — the writer
	// must have copied, not retained.
	preds[0], preds[1] = -7, -8
	if _, err := WriteMaybeReuse(w, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, -7, -8}
	if w.Out.Len() != len(want) {
		t.Fatalf("accumulated %d rows, want %d", w.Out.Len(), len(want))
	}
	for i, v := range want {
		if w.Out.Cols[0].Floats[i] != v {
			t.Fatalf("row %d = %v, want %v", i, w.Out.Cols[0].Floats[i], v)
		}
	}
	// Invalid batches are rejected on both paths.
	bad := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.IntVector([]int64{1})}}
	if err := w.Write(bad); err == nil {
		t.Fatal("mistyped batch should fail validation")
	}
}

func TestWriteMaybeReuseRetainingWriter(t *testing.T) {
	schema := colstore.Schema{{Name: "p", Type: colstore.TypeFloat64}}
	c := &CollectWriter{}
	b := &colstore.Batch{Schema: schema, Cols: []*colstore.Vector{colstore.FloatVector([]float64{1})}}
	reused, err := WriteMaybeReuse(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("CollectWriter retains batches; caller must not reuse")
	}
	if len(c.Batches) != 1 || c.Batches[0] != b {
		t.Fatal("batch was not retained as written")
	}
}
