package plan

import (
	"math"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

// Costing: cardinality estimates come from colstore block statistics only —
// zone-map ranges, block row counts, and NDV read off dictionary and RLE
// headers (exact when a B-tree index is attached). Selectivity folds the
// classic System-R defaults: 1/NDV for equality, linear range fraction for
// inequalities, 1/3 when the engine knows nothing.

const (
	// defaultSel is the selectivity of a predicate the statistics cannot
	// size (non-pushable conjuncts, range predicates without zone stats).
	defaultSel = 1.0 / 3
	// indexSelThreshold gates the index path: an index scan wins only when
	// its predicate keeps at most this fraction of the table, since gather
	// pays per-block decode for every touched block while a full scan
	// streams them.
	indexSelThreshold = 0.25
)

// tableStats aggregates per-segment statistics for one table.
type tableStats struct {
	rows  int
	segs  []*colstore.Segment
	cache map[string]colstore.ColumnStats
}

func gatherStats(src Source, table string, def *catalog.TableDef) (*tableStats, error) {
	segs, err := src.Segments(table)
	if err != nil {
		return nil, err
	}
	ts := &tableStats{segs: segs, cache: map[string]colstore.ColumnStats{}}
	for _, s := range segs {
		ts.rows += s.Rows()
	}
	return ts, nil
}

// colStats merges the column's per-segment statistics: rows sum, ranges
// union (ignoring empty segments), and NDV as the per-segment maximum —
// segmentation spreads one value domain across nodes, so distincts overlap
// rather than add.
func (ts *tableStats) colStats(col string) colstore.ColumnStats {
	if st, ok := ts.cache[col]; ok {
		return st
	}
	var out colstore.ColumnStats
	first := true
	for _, s := range ts.segs {
		if s.Rows() == 0 {
			continue
		}
		st, err := s.ColumnStats(col)
		if err != nil {
			continue
		}
		out.Rows += st.Rows
		if st.NDV > out.NDV {
			out.NDV = st.NDV
		}
		if first {
			out.HasRange, out.Min, out.Max = st.HasRange, st.Min, st.Max
			first = false
			continue
		}
		if !st.HasRange {
			out.HasRange = false
		} else if out.HasRange {
			out.Min = math.Min(out.Min, st.Min)
			out.Max = math.Max(out.Max, st.Max)
		}
	}
	ts.cache[col] = out
	return out
}

// indexed reports whether every segment has a B-tree index on the column —
// the DDL path builds per node, so a half-indexed table only occurs
// mid-recovery, and the planner then declines the index path.
func (ts *tableStats) indexed(col string) bool {
	if len(ts.segs) == 0 {
		return false
	}
	for _, s := range ts.segs {
		if s.Index(col) == nil {
			return false
		}
	}
	return true
}

// predFromExpr converts `col OP literal` (or mirrored) into a storage
// predicate. Identical to the executor's pushdown extraction; qualifiers
// must already be stripped.
func predFromExpr(e sqlparse.Expr) *colstore.Pred {
	bin, ok := e.(*sqlparse.Binary)
	if !ok {
		return nil
	}
	opMap := map[string]colstore.CompareOp{
		"=": colstore.OpEQ, "<>": colstore.OpNE,
		"<": colstore.OpLT, "<=": colstore.OpLE,
		">": colstore.OpGT, ">=": colstore.OpGE,
	}
	mirror := map[colstore.CompareOp]colstore.CompareOp{
		colstore.OpEQ: colstore.OpEQ, colstore.OpNE: colstore.OpNE,
		colstore.OpLT: colstore.OpGT, colstore.OpLE: colstore.OpGE,
		colstore.OpGT: colstore.OpLT, colstore.OpGE: colstore.OpLE,
	}
	op, ok := opMap[bin.Op]
	if !ok {
		return nil
	}
	if col, okc := bin.L.(*sqlparse.ColRef); okc && col.Table == "" {
		if v, okl := literalValue(bin.R); okl {
			return &colstore.Pred{Col: col.Name, Op: op, Val: v}
		}
	}
	if col, okc := bin.R.(*sqlparse.ColRef); okc && col.Table == "" {
		if v, okl := literalValue(bin.L); okl {
			return &colstore.Pred{Col: col.Name, Op: mirror[op], Val: v}
		}
	}
	return nil
}

func literalValue(e sqlparse.Expr) (any, bool) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		if x.IsInt {
			return x.Int, true
		}
		return x.Float, true
	case *sqlparse.StringLit:
		return x.Val, true
	case *sqlparse.BoolLit:
		return x.Val, true
	case *sqlparse.Unary:
		if x.Op != "-" {
			return nil, false
		}
		v, ok := literalValue(x.X)
		if !ok {
			return nil, false
		}
		switch n := v.(type) {
		case int64:
			return -n, true
		case float64:
			return -n, true
		}
		return nil, false
	}
	return nil, false
}

func numericVal(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		if math.IsNaN(x) {
			return 0, false
		}
		return x, true
	}
	return 0, false
}

func clampSel(s float64) float64 {
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// predSelectivity estimates the fraction of rows a predicate keeps.
func predSelectivity(p *colstore.Pred, st colstore.ColumnStats) float64 {
	if st.Rows == 0 {
		return 1
	}
	eqSel := defaultSel
	if st.NDV > 0 {
		eqSel = 1 / float64(st.NDV)
	}
	switch p.Op {
	case colstore.OpEQ:
		return clampSel(eqSel)
	case colstore.OpNE:
		return clampSel(1 - eqSel)
	case colstore.OpLT, colstore.OpLE, colstore.OpGT, colstore.OpGE:
		v, ok := numericVal(p.Val)
		if !ok || !st.HasRange || !(st.Max > st.Min) {
			return defaultSel
		}
		frac := (v - st.Min) / (st.Max - st.Min)
		if p.Op == colstore.OpGT || p.Op == colstore.OpGE {
			frac = 1 - frac
		}
		return clampSel(frac)
	}
	return defaultSel
}

// rangeSelectivity estimates the kept fraction of `lo AND hi` over one
// column from its zone-map range — the bounds' overlap with [Min, Max] —
// falling back to the product of the individual estimates when the
// statistics cannot size the interval (string bounds, no range stats).
func rangeSelectivity(lo, hi *colstore.Pred, st colstore.ColumnStats) float64 {
	lv, lok := numericVal(lo.Val)
	hv, hok := numericVal(hi.Val)
	if !lok || !hok || !st.HasRange || !(st.Max > st.Min) {
		return clampSel(predSelectivity(lo, st) * predSelectivity(hi, st))
	}
	return clampSel((hv - lv) / (st.Max - st.Min))
}

// conj is one analyzed WHERE conjunct: the expression, its storage predicate
// when pushable, and its estimated selectivity.
type conj struct {
	expr sqlparse.Expr
	pred *colstore.Pred
	sel  float64
}

func analyzeConjuncts(where sqlparse.Expr, ts *tableStats) []conj {
	exprs := flattenAnd(where)
	out := make([]conj, 0, len(exprs))
	for _, e := range exprs {
		c := conj{expr: e, sel: defaultSel}
		if p := predFromExpr(e); p != nil {
			c.pred = p
			c.sel = predSelectivity(p, ts.colStats(p.Col))
		}
		out = append(out, c)
	}
	return out
}

// chooseAccess picks the access path for one table given its conjuncts:
// a B-tree index scan when the most selective index-eligible predicate keeps
// under indexSelThreshold of the rows, else a sequential scan with the most
// selective pushable conjunct as the exact primary predicate and every other
// pushable conjunct as a zone-map pruning predicate. The combined
// selectivity of all conjuncts is returned for cardinality estimation.
func chooseAccess(conjs []conj, ts *tableStats, noIndex bool) (*Access, float64) {
	combined := 1.0
	for _, c := range conjs {
		combined *= c.sel
	}
	residualExcept := func(skip int) sqlparse.Expr {
		var rest []sqlparse.Expr
		for i, c := range conjs {
			if i != skip {
				rest = append(rest, c.expr)
			}
		}
		return rebuildAnd(rest)
	}
	if !noIndex {
		best := -1
		for i, c := range conjs {
			if c.pred == nil || c.pred.Op == colstore.OpNE || !ts.indexed(c.pred.Col) {
				continue
			}
			if c.sel > indexSelThreshold {
				continue
			}
			if best < 0 || c.sel < conjs[best].sel {
				best = i
			}
		}
		// Bounded ranges: a lower and an upper bound on the same indexed
		// column combine into one index range probe, sized by the interval's
		// overlap with the zone-map range — two individually unselective
		// half-ranges (a >= lo AND a < hi) often pin a narrow window.
		bestLo, bestHi, bestRangeSel := -1, -1, 0.0
		lower := map[string]int{}
		upper := map[string]int{}
		for i, c := range conjs {
			if c.pred == nil || !ts.indexed(c.pred.Col) {
				continue
			}
			switch c.pred.Op {
			case colstore.OpGT, colstore.OpGE:
				if j, ok := lower[c.pred.Col]; !ok || c.sel < conjs[j].sel {
					lower[c.pred.Col] = i
				}
			case colstore.OpLT, colstore.OpLE:
				if j, ok := upper[c.pred.Col]; !ok || c.sel < conjs[j].sel {
					upper[c.pred.Col] = i
				}
			}
		}
		for i, c := range conjs { // conjunct order, not map order: plans must be deterministic
			if c.pred == nil {
				continue
			}
			col := c.pred.Col
			if li, ok := lower[col]; !ok || li != i {
				continue
			}
			ui, ok := upper[col]
			if !ok {
				continue
			}
			sel := rangeSelectivity(conjs[i].pred, conjs[ui].pred, ts.colStats(col))
			if sel > indexSelThreshold {
				continue
			}
			if bestLo < 0 || sel < bestRangeSel {
				bestLo, bestHi, bestRangeSel = i, ui, sel
			}
		}
		if bestLo >= 0 && (best < 0 || bestRangeSel < conjs[best].sel) {
			// Cardinality: the interval estimate replaces the two bounds'
			// independent products — `x >= lo AND x < hi` is one window, not
			// two coin flips.
			pairCombined := bestRangeSel
			for i, c := range conjs {
				if i != bestLo && i != bestHi {
					pairCombined *= c.sel
				}
			}
			// The upper bound's conjunct stays in Residual: the index probe
			// already satisfies it (a cheap re-check over k rows), and the
			// no-index fallback scan needs it for exactness.
			return &Access{
				Primary:  conjs[bestLo].pred,
				Primary2: conjs[bestHi].pred,
				Residual: residualExcept(bestLo),
				IndexCol: conjs[bestLo].pred.Col,
			}, clampSel(pairCombined)
		}
		if best >= 0 {
			return &Access{
				Primary:  conjs[best].pred,
				Residual: residualExcept(best),
				IndexCol: conjs[best].pred.Col,
			}, combined
		}
	}
	acc := &Access{}
	prim := -1
	for i, c := range conjs {
		if c.pred == nil {
			continue
		}
		if prim < 0 || c.sel < conjs[prim].sel {
			prim = i
		}
	}
	if prim >= 0 {
		acc.Primary = conjs[prim].pred
		for i, c := range conjs {
			if i != prim && c.pred != nil {
				acc.Zone = append(acc.Zone, *c.pred)
			}
		}
	}
	acc.Residual = residualExcept(prim)
	return acc, combined
}

// ScanAccess chooses the access path for one table's WHERE clause without
// building a full plan. The executor's UDTF input path uses it to push every
// pushable conjunct (primary exact + zone pruning) instead of just the first.
// noIndex forces a sequential scan.
func ScanAccess(src Source, table string, where sqlparse.Expr, noIndex bool) (*Access, error) {
	def, err := src.TableDef(table)
	if err != nil {
		return nil, err
	}
	ts, err := gatherStats(src, table, def)
	if err != nil {
		return nil, err
	}
	acc, _ := chooseAccess(analyzeConjuncts(where, ts), ts, noIndex)
	return acc, nil
}

// estimateRows converts a selectivity into an output-row estimate, never
// rounding a nonzero estimate down to zero.
func estimateRows(rows int, sel float64) int64 {
	if rows <= 0 {
		return 0
	}
	est := int64(math.Round(float64(rows) * clampSel(sel)))
	if est == 0 && sel > 0 {
		est = 1
	}
	return est
}

// estimateGroups sizes an aggregation's output: the product of the group-by
// columns' NDVs, capped by the input estimate. A global aggregate is one row.
func estimateGroups(groupBy []string, ndv func(col string) int, inEst int64) int64 {
	if len(groupBy) == 0 {
		return 1
	}
	est := int64(1)
	for _, g := range groupBy {
		n := ndv(g)
		if n <= 0 {
			n = 1
		}
		if est > inEst/int64(n)+1 {
			est = inEst // avoid overflow; cap applies below anyway
			break
		}
		est *= int64(n)
	}
	if est > inEst {
		est = inEst
	}
	if est < 1 {
		est = 1
	}
	return est
}

// estimateJoin sizes an equi-join: |L| * |R| / max(NDV(lk), NDV(rk)).
func estimateJoin(lEst, rEst int64, lNDV, rNDV int) int64 {
	d := lNDV
	if rNDV > d {
		d = rNDV
	}
	if d <= 0 {
		d = 1
	}
	est := int64(math.Round(float64(lEst) * float64(rEst) / float64(d)))
	if est < 1 && lEst > 0 && rEst > 0 {
		est = 1
	}
	return est
}
