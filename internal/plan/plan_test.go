package plan

import (
	"strings"
	"testing"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

type fakeSource struct {
	defs map[string]*catalog.TableDef
	segs map[string][]*colstore.Segment
}

func (f *fakeSource) TableDef(name string) (*catalog.TableDef, error) {
	d, ok := f.defs[name]
	if !ok {
		return nil, &unknownTable{name}
	}
	return d, nil
}

func (f *fakeSource) Segments(name string) ([]*colstore.Segment, error) {
	return f.segs[name], nil
}

type unknownTable struct{ name string }

func (e *unknownTable) Error() string { return "unknown table " + e.name }

func newFake(t *testing.T) *fakeSource {
	t.Helper()
	schemaT := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
	}
	schemaU := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "b", Type: colstore.TypeInt64},
	}
	mk := func(schema colstore.Schema, rows int, fill func(b *colstore.Batch, i int)) []*colstore.Segment {
		var segs []*colstore.Segment
		for s := 0; s < 2; s++ {
			seg := colstore.NewSegment(schema, 128)
			b := colstore.NewBatch(schema)
			for i := 0; i < rows; i++ {
				fill(b, s*rows+i)
			}
			if err := seg.Append(b); err != nil {
				t.Fatal(err)
			}
			segs = append(segs, seg)
		}
		return segs
	}
	f := &fakeSource{
		defs: map[string]*catalog.TableDef{
			"t": {Name: "t", Schema: schemaT},
			"u": {Name: "u", Schema: schemaU},
		},
		segs: map[string][]*colstore.Segment{},
	}
	f.segs["t"] = mk(schemaT, 2000, func(b *colstore.Batch, i int) {
		_ = b.AppendRow(int64(i), int64(i%50), float64(i)/8)
	})
	f.segs["u"] = mk(schemaU, 300, func(b *colstore.Batch, i int) {
		_ = b.AppendRow(int64(i%100), int64(i%7))
	})
	return f
}

func parseSel(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sqlparse.Select)
}

func TestIndexScanChosenWhenSelective(t *testing.T) {
	f := newFake(t)
	for _, seg := range f.segs["t"] {
		if err := seg.BuildIndex("id"); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Build(parseSel(t, "SELECT a FROM t WHERE id = 7"), f)
	if err != nil {
		t.Fatal(err)
	}
	scan := p.Root
	for len(scan.Children) > 0 {
		scan = scan.Children[0]
	}
	if scan.Op != OpIndexScan || scan.Access.IndexCol != "id" {
		t.Fatalf("expected IndexScan on id, got %s %+v", scan.Op, scan.Access)
	}
	if scan.EstRows <= 0 || scan.EstRows > 10 {
		t.Fatalf("point-lookup estimate = %d", scan.EstRows)
	}
	// Without the index, the same query seq-scans with a pushdown.
	for _, seg := range f.segs["t"] {
		seg.DropIndex("id")
	}
	p, err = Build(parseSel(t, "SELECT a FROM t WHERE id = 7"), f)
	if err != nil {
		t.Fatal(err)
	}
	scan = p.Root
	for len(scan.Children) > 0 {
		scan = scan.Children[0]
	}
	if scan.Op != OpSeqScan || scan.Access.Primary == nil {
		t.Fatalf("expected SeqScan with pushdown, got %s %+v", scan.Op, scan.Access)
	}
}

func TestMultiConjunctZonePreds(t *testing.T) {
	f := newFake(t)
	p, err := Build(parseSel(t, "SELECT a FROM t WHERE a = 3 AND id >= 3900 AND x > 1"), f)
	if err != nil {
		t.Fatal(err)
	}
	scan := p.Root.Children[0]
	acc := scan.Access
	if acc.Primary == nil {
		t.Fatal("no primary predicate")
	}
	// id >= 3900 keeps ~2.5% of rows, far under a = 3's 1/50 * ... pick:
	// selectivities: a = 3 -> 1/NDV(a)=1/50=0.02; id >= 3900 -> (4000-3900)/3999 ~ 0.025.
	if acc.Primary.Col != "a" {
		t.Fatalf("primary should be the most selective conjunct, got %s", acc.Primary.Col)
	}
	if len(acc.Zone) != 2 {
		t.Fatalf("want 2 zone predicates, got %v", acc.Zone)
	}
	if acc.Residual == nil || !strings.Contains(acc.Residual.String(), ">=") {
		t.Fatalf("zone conjuncts must stay in residual: %v", acc.Residual)
	}
	// The exactly-served primary must NOT be in the residual.
	if strings.Contains(acc.Residual.String(), "= 3)") {
		t.Fatalf("primary conjunct should not be re-filtered: %v", acc.Residual)
	}
}

func TestJoinPlanShape(t *testing.T) {
	f := newFake(t)
	p, err := Build(parseSel(t, "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a = 1 AND u.b = 2 AND t.x > u.b"), f)
	if err != nil {
		t.Fatal(err)
	}
	// Root should be Project over HashJoin.
	if p.Root.Op != OpProject {
		t.Fatalf("root = %s", p.Root.Op)
	}
	j := p.Root.Children[0]
	if j.Op != OpHashJoin || j.LeftKey != "t.id" || j.RightKey != "u.id" {
		t.Fatalf("join = %s %s=%s", j.Op, j.LeftKey, j.RightKey)
	}
	if j.Residual == nil {
		t.Fatal("cross-table conjunct must stay at the join")
	}
	lt, rt := j.Children[0], j.Children[1]
	if lt.Table != "t" || rt.Table != "u" {
		t.Fatalf("scan tables: %s, %s", lt.Table, rt.Table)
	}
	// Single-table conjuncts pushed into the scans with bare names.
	if lt.Access.Primary == nil || lt.Access.Primary.Col != "a" {
		t.Fatalf("t-side pushdown missing: %+v", lt.Access)
	}
	if rt.Access.Primary == nil || rt.Access.Primary.Col != "b" {
		t.Fatalf("u-side pushdown missing: %+v", rt.Access)
	}
	// Normalized projection references are canonical dotted names.
	if cr, ok := p.Sel.Items[0].Expr.(*sqlparse.ColRef); !ok || cr.Name != "t.a" || cr.Table != "" {
		t.Fatalf("normalized item = %+v", p.Sel.Items[0].Expr)
	}
}

func TestJoinErrors(t *testing.T) {
	f := newFake(t)
	for _, bad := range []string{
		"SELECT * FROM t JOIN u ON t.id < u.id",
		"SELECT * FROM t JOIN u ON t.id = t.a",
		"SELECT id FROM t JOIN u ON t.id = u.id",               // ambiguous bare column
		"SELECT t.a FROM t JOIN u ON t.id = u.id WHERE zz = 1", // unknown column
		"SELECT t.a FROM t JOIN t ON t.id = t.id",              // duplicate alias
	} {
		if _, err := Build(parseSel(t, bad), f); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
	// Unambiguous bare columns resolve across tables.
	p, err := Build(parseSel(t, "SELECT a, b FROM t JOIN u ON t.id = u.id"), f)
	if err != nil {
		t.Fatal(err)
	}
	if cr := p.Sel.Items[0].Expr.(*sqlparse.ColRef); cr.Name != "t.a" {
		t.Fatalf("bare a resolved to %q", cr.Name)
	}
	if cr := p.Sel.Items[1].Expr.(*sqlparse.ColRef); cr.Name != "u.b" {
		t.Fatalf("bare b resolved to %q", cr.Name)
	}
}

func TestExplainRendering(t *testing.T) {
	f := newFake(t)
	p, err := Build(parseSel(t, "SELECT a, COUNT(*) FROM t WHERE id < 100 GROUP BY a ORDER BY a LIMIT 5"), f)
	if err != nil {
		t.Fatal(err)
	}
	actuals := p.MatchActuals([]OpStat{
		{Op: "scan", Rows: 200},
		{Op: "aggregate", Rows: 50},
		{Op: "sort", Rows: 50},
		{Op: "limit", Rows: 5},
	})
	lines := p.Text(actuals)
	if len(lines) != 4 {
		t.Fatalf("text lines: %v", lines)
	}
	if !strings.Contains(lines[0], "Limit") || !strings.Contains(lines[0], "actual=5") {
		t.Fatalf("limit line: %q", lines[0])
	}
	if !strings.Contains(lines[3], "SeqScan on t") || !strings.Contains(lines[3], "actual=200") {
		t.Fatalf("scan line: %q", lines[3])
	}
	js, err := p.JSON(actuals)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"op": "Limit"`, `"op": "SeqScan"`, `"est_rows"`, `"actual_rows": 200`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("json missing %s:\n%s", want, js)
		}
	}
	// Elided limit stage inherits its child's actual.
	actuals = p.MatchActuals([]OpStat{
		{Op: "scan", Rows: 200},
		{Op: "aggregate", Rows: 3},
		{Op: "sort", Rows: 3},
	})
	if actuals[p.Root.ID] != 3 {
		t.Fatalf("elided limit actual = %d", actuals[p.Root.ID])
	}
}

func TestPlannerDoesNotMutateInput(t *testing.T) {
	f := newFake(t)
	sel := parseSel(t, "SELECT t.a FROM t AS t JOIN u ON t.id = u.id WHERE t.a = 1")
	before := sel.String()
	if _, err := Build(sel, f); err != nil {
		t.Fatal(err)
	}
	if sel.String() != before {
		t.Fatalf("planner mutated caller's AST:\n before %s\n after  %s", before, sel.String())
	}
}

func TestIndexRangeScanChosenForBoundedPair(t *testing.T) {
	f := newFake(t)
	for _, seg := range f.segs["t"] {
		if err := seg.BuildIndex("id"); err != nil {
			t.Fatal(err)
		}
	}
	// Each half-range alone keeps ~half the table — far over the index
	// threshold — but together they pin a 40-row window the planner must
	// serve as one bounded index range probe.
	p, err := Build(parseSel(t, "SELECT a FROM t WHERE id >= 1980 AND id < 2020"), f)
	if err != nil {
		t.Fatal(err)
	}
	scan := p.Root
	for len(scan.Children) > 0 {
		scan = scan.Children[0]
	}
	if scan.Op != OpIndexScan || scan.Access.IndexCol != "id" {
		t.Fatalf("expected bounded IndexScan on id, got %s %+v", scan.Op, scan.Access)
	}
	acc := scan.Access
	if acc.Primary == nil || acc.Primary.Op != colstore.OpGE {
		t.Fatalf("lower bound should be the primary probe: %+v", acc.Primary)
	}
	if acc.Primary2 == nil || acc.Primary2.Op != colstore.OpLT {
		t.Fatalf("upper bound should be the secondary probe: %+v", acc.Primary2)
	}
	// The upper bound stays in the residual so the no-index fallback scan
	// remains exact.
	if acc.Residual == nil || !strings.Contains(acc.Residual.String(), "<") {
		t.Fatalf("upper bound must stay in residual: %v", acc.Residual)
	}
	if scan.EstRows <= 0 || scan.EstRows > 100 {
		t.Fatalf("bounded-range estimate = %d (want ~40)", scan.EstRows)
	}
	// A more selective equality on an indexed column still wins over the pair.
	for _, seg := range f.segs["t"] {
		if err := seg.BuildIndex("a"); err != nil {
			t.Fatal(err)
		}
	}
	p, err = Build(parseSel(t, "SELECT a FROM t WHERE id >= 0 AND id < 4000 AND a = 3"), f)
	if err != nil {
		t.Fatal(err)
	}
	scan = p.Root
	for len(scan.Children) > 0 {
		scan = scan.Children[0]
	}
	if scan.Op != OpIndexScan || scan.Access.IndexCol != "a" || scan.Access.Primary2 != nil {
		t.Fatalf("equality should beat a near-full range, got %s %+v", scan.Op, scan.Access)
	}
}
