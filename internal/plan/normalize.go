package plan

import (
	"fmt"
	"strings"

	"verticadr/internal/catalog"
	"verticadr/internal/sqlparse"
)

// The planner owns a deep copy of every statement it plans: column
// references are resolved and rewritten in place (qualifiers stripped for
// single-table statements, rewritten to "alias.column" names under a join),
// and the executor walks the rewritten copy. The caller's AST is never
// touched — plans may be cached and shared.

func cloneSelect(sel *sqlparse.Select) *sqlparse.Select {
	out := *sel
	out.Items = make([]sqlparse.SelectItem, len(sel.Items))
	for i, it := range sel.Items {
		out.Items[i] = sqlparse.SelectItem{Star: it.Star, Expr: copyExpr(it.Expr), Alias: it.Alias}
	}
	if len(sel.Joins) > 0 {
		out.Joins = make([]sqlparse.Join, len(sel.Joins))
		for i, j := range sel.Joins {
			out.Joins[i] = sqlparse.Join{Table: j.Table, Alias: j.Alias, On: copyExpr(j.On)}
		}
	}
	out.Where = copyExpr(sel.Where)
	out.GroupBy = append([]string(nil), sel.GroupBy...)
	out.OrderBy = append([]sqlparse.OrderItem(nil), sel.OrderBy...)
	return &out
}

func copyExpr(e sqlparse.Expr) sqlparse.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlparse.ColRef:
		c := *x
		return &c
	case *sqlparse.NumberLit:
		c := *x
		return &c
	case *sqlparse.StringLit:
		c := *x
		return &c
	case *sqlparse.BoolLit:
		c := *x
		return &c
	case *sqlparse.Placeholder:
		c := *x
		return &c
	case *sqlparse.Unary:
		return &sqlparse.Unary{Op: x.Op, X: copyExpr(x.X)}
	case *sqlparse.Binary:
		return &sqlparse.Binary{Op: x.Op, L: copyExpr(x.L), R: copyExpr(x.R)}
	case *sqlparse.FuncCall:
		c := &sqlparse.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			c.Args = append(c.Args, copyExpr(a))
		}
		if x.Params != nil {
			c.Params = make(map[string]sqlparse.Expr, len(x.Params))
			for k, v := range x.Params {
				c.Params[k] = copyExpr(v)
			}
		}
		if x.Over != nil {
			o := *x.Over
			o.PartitionBy = append([]string(nil), x.Over.PartitionBy...)
			c.Over = &o
		}
		return c
	default:
		// Unknown node kinds flow through unchanged; the executor rejects
		// anything it cannot evaluate.
		return e
	}
}

// walkColRefs visits every column reference in the expression, allowing the
// visitor to rewrite it in place.
func walkColRefs(e sqlparse.Expr, f func(*sqlparse.ColRef) error) error {
	switch x := e.(type) {
	case *sqlparse.ColRef:
		return f(x)
	case *sqlparse.Unary:
		return walkColRefs(x.X, f)
	case *sqlparse.Binary:
		if err := walkColRefs(x.L, f); err != nil {
			return err
		}
		return walkColRefs(x.R, f)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			if err := walkColRefs(a, f); err != nil {
				return err
			}
		}
		for _, v := range x.Params {
			if err := walkColRefs(v, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// normalizeSingle strips table qualifiers from a single-table statement,
// rejecting qualifiers that name anything but the FROM table (or its alias).
func normalizeSingle(sel *sqlparse.Select, def *catalog.TableDef) error {
	quals := map[string]bool{sel.From: true}
	if sel.FromAlias != "" {
		quals[sel.FromAlias] = true
	}
	strip := func(c *sqlparse.ColRef) error {
		if c.Table == "" {
			return nil
		}
		if !quals[c.Table] {
			return fmt.Errorf("plan: unknown table %q in reference %s", c.Table, c.String())
		}
		c.Table = ""
		return nil
	}
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if err := walkColRefs(it.Expr, strip); err != nil {
			return err
		}
	}
	if sel.Where != nil {
		if err := walkColRefs(sel.Where, strip); err != nil {
			return err
		}
	}
	stripName := func(s string) string {
		if i := strings.IndexByte(s, '.'); i > 0 && quals[s[:i]] {
			return s[i+1:]
		}
		return s
	}
	for i, g := range sel.GroupBy {
		sel.GroupBy[i] = stripName(g)
	}
	for i, o := range sel.OrderBy {
		sel.OrderBy[i].Col = stripName(o.Col)
	}
	return nil
}

// tableRef is one table in a join's scope.
type tableRef struct {
	alias string
	table string
	def   *catalog.TableDef
	ts    *tableStats
}

// resolveRef rewrites one column reference to its canonical "alias.column"
// name against the given scope.
func resolveRef(c *sqlparse.ColRef, scope []tableRef) error {
	if c.Table != "" {
		for _, r := range scope {
			if r.alias == c.Table {
				if r.def.Schema.ColIndex(c.Name) < 0 {
					return fmt.Errorf("plan: unknown column %q in table %q", c.Name, r.alias)
				}
				c.Name = r.alias + "." + c.Name
				c.Table = ""
				return nil
			}
		}
		return fmt.Errorf("plan: unknown table %q in reference %s", c.Table, c.String())
	}
	if strings.IndexByte(c.Name, '.') > 0 {
		// Already canonical (re-planning a normalized statement).
		return nil
	}
	found := -1
	for i, r := range scope {
		if r.def.Schema.ColIndex(c.Name) >= 0 {
			if found >= 0 {
				return fmt.Errorf("plan: ambiguous column %q (in %q and %q)", c.Name, scope[found].alias, r.alias)
			}
			found = i
		}
	}
	if found < 0 {
		return fmt.Errorf("plan: unknown column %q", c.Name)
	}
	c.Name = scope[found].alias + "." + c.Name
	return nil
}

// resolveName canonicalizes a GROUP BY / ORDER BY name the same way.
// Unresolvable ORDER BY names may be output aliases, so the caller decides
// whether an error is fatal.
func resolveName(s string, scope []tableRef) (string, error) {
	if i := strings.IndexByte(s, '.'); i > 0 {
		for _, r := range scope {
			if r.alias == s[:i] {
				if r.def.Schema.ColIndex(s[i+1:]) < 0 {
					return "", fmt.Errorf("plan: unknown column %q in table %q", s[i+1:], r.alias)
				}
				return s, nil
			}
		}
		return "", fmt.Errorf("plan: unknown table %q in reference %q", s[:i], s)
	}
	c := &sqlparse.ColRef{Name: s}
	if err := resolveRef(c, scope); err != nil {
		return "", err
	}
	return c.Name, nil
}

// normalizeJoin rewrites every column reference in a join statement to its
// canonical "alias.column" form. ON clauses resolve against the tables in
// scope at that join (the base table plus all earlier joins, plus the joined
// table itself).
func normalizeJoin(sel *sqlparse.Select, refs []tableRef) error {
	full := func(c *sqlparse.ColRef) error { return resolveRef(c, refs) }
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if err := walkColRefs(it.Expr, full); err != nil {
			return err
		}
	}
	if sel.Where != nil {
		if err := walkColRefs(sel.Where, full); err != nil {
			return err
		}
	}
	for i := range sel.Joins {
		scope := refs[:i+2]
		if err := walkColRefs(sel.Joins[i].On, func(c *sqlparse.ColRef) error {
			return resolveRef(c, scope)
		}); err != nil {
			return err
		}
	}
	for i, g := range sel.GroupBy {
		n, err := resolveName(g, refs)
		if err != nil {
			return err
		}
		sel.GroupBy[i] = n
	}
	for i, o := range sel.OrderBy {
		n, err := resolveName(o.Col, refs)
		if err != nil {
			// ORDER BY may name an output alias; leave it for the executor.
			continue
		}
		sel.OrderBy[i].Col = n
	}
	return nil
}

// flattenAnd splits a WHERE clause into its top-level AND conjuncts.
func flattenAnd(e sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparse.Binary); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []sqlparse.Expr{e}
}

// rebuildAnd reassembles conjuncts left-associated; nil when empty.
func rebuildAnd(conjs []sqlparse.Expr) sqlparse.Expr {
	if len(conjs) == 0 {
		return nil
	}
	out := conjs[0]
	for _, c := range conjs[1:] {
		out = &sqlparse.Binary{Op: "AND", L: out, R: c}
	}
	return out
}

// aliasPrefix returns the "alias" of a canonical dotted column name, or ""
// for a bare name.
func aliasPrefix(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return ""
}

// stripAliasExpr deep-copies the expression rewriting this alias's columns
// to bare names, producing a filter evaluable against the table's own scan
// batches (before join renaming).
func stripAliasExpr(e sqlparse.Expr, alias string) sqlparse.Expr {
	out := copyExpr(e)
	_ = walkColRefs(out, func(c *sqlparse.ColRef) error {
		if strings.HasPrefix(c.Name, alias+".") {
			c.Name = c.Name[len(alias)+1:]
		}
		return nil
	})
	return out
}
