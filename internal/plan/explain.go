package plan

import (
	"encoding/json"
	"fmt"
	"strings"
)

// EXPLAIN rendering. Both forms show estimated rows next to actual rows
// (when the statement executed); the JSON form deliberately excludes
// timings and byte counts so its output is stable enough to pin in golden
// tests.

// OpStat is one executed operator's measurement (profile label, output
// rows), in completion order.
type OpStat struct {
	Op   string
	Rows int64
}

// ProfOp returns the profile label the executor emits for this plan
// operator's stage.
func ProfOp(op string) string {
	switch op {
	case OpSeqScan, OpIndexScan:
		return "scan"
	case OpHashJoin:
		return "join"
	case OpDotProductJoin, OpUDTF:
		return "udtf"
	case OpAggregate:
		return "aggregate"
	case OpProject:
		return "project"
	case OpSort:
		return "sort"
	case OpLimit:
		return "limit"
	case OpConst:
		return "const"
	}
	return strings.ToLower(op)
}

func (p *Plan) postorder() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		out = append(out, n)
	}
	walk(p.Root)
	return out
}

// MatchActuals aligns executed operator measurements with plan nodes: nodes
// execute in post-order and each stage emits one profile entry, so a single
// forward sweep matching profile labels recovers each node's actual row
// count. Stages the executor elides at run time (a LIMIT above fewer rows
// than its bound) inherit their child's actual — rows passed through
// unchanged. Returns node ID → actual rows.
func (p *Plan) MatchActuals(ops []OpStat) map[int]int64 {
	out := map[int]int64{}
	oi := 0
	for _, n := range p.postorder() {
		want := ProfOp(n.Op)
		found := false
		for j := oi; j < len(ops); j++ {
			if ops[j].Op == want {
				out[n.ID] = ops[j].Rows
				oi = j + 1
				found = true
				break
			}
		}
		if !found && len(n.Children) > 0 {
			if v, ok := out[n.Children[len(n.Children)-1].ID]; ok {
				out[n.ID] = v
			}
		}
	}
	return out
}

func nodeLabel(n *Node) string {
	s := n.Op
	if n.Table != "" {
		s += " on " + n.Table
		if n.Alias != "" && n.Alias != n.Table {
			s += " AS " + n.Alias
		}
	}
	if n.Detail != "" {
		s += " [" + n.Detail + "]"
	}
	// Scans over a segmented table fan out one worker per segment — the
	// same shape a cluster router fans out per shard. Single-segment scans
	// stay unannotated (and golden-stable).
	if n.Segs > 1 {
		s += fmt.Sprintf(" {fan-out %d segments}", n.Segs)
	}
	return s
}

// Text renders the plan tree as indented lines, one per operator.
func (p *Plan) Text(actuals map[int]int64) []string {
	var lines []string
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		line := strings.Repeat("  ", depth)
		if depth > 0 {
			line += "-> "
		}
		line += nodeLabel(n) + fmt.Sprintf(" (est=%d", n.EstRows)
		if a, ok := actuals[n.ID]; ok {
			line += fmt.Sprintf(" actual=%d", a)
		}
		line += ")"
		lines = append(lines, line)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return lines
}

type jsonNode struct {
	Op         string      `json:"op"`
	Table      string      `json:"table,omitempty"`
	Alias      string      `json:"alias,omitempty"`
	Index      string      `json:"index,omitempty"`
	Detail     string      `json:"detail,omitempty"`
	Segments   int         `json:"segments,omitempty"` // scan fan-out width when segmented (> 1)
	EstRows    int64       `json:"est_rows"`
	ActualRows *int64      `json:"actual_rows,omitempty"`
	Children   []*jsonNode `json:"children,omitempty"`
}

func toJSONNode(n *Node, actuals map[int]int64) *jsonNode {
	j := &jsonNode{
		Op:      n.Op,
		Table:   n.Table,
		Detail:  n.Detail,
		EstRows: n.EstRows,
	}
	if n.Alias != "" && n.Alias != n.Table {
		j.Alias = n.Alias
	}
	if n.Segs > 1 {
		j.Segments = n.Segs
	}
	if n.Access != nil {
		j.Index = n.Access.IndexCol
	}
	if a, ok := actuals[n.ID]; ok {
		v := a
		j.ActualRows = &v
	}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSONNode(c, actuals))
	}
	return j
}

// JSON renders the plan as a stable JSON document (EXPLAIN (FORMAT JSON)).
func (p *Plan) JSON(actuals map[int]int64) ([]byte, error) {
	return json.MarshalIndent(toJSONNode(p.Root, actuals), "", "  ")
}
