// Package plan is the cost-based query planner: it lowers a parsed SELECT
// into a tree of physical operators, estimating cardinalities from colstore
// block statistics (zone-map ranges, row counts, NDV from dictionary and RLE
// headers, exact NDV from attached B-tree indexes) and choosing among access
// paths — full segment scan with multi-conjunct zone pruning, B-tree index
// scan (O(log n + k) for selective point/range predicates), hash join for
// equi-joins, and a dot-product join for PREDICT over sharded models.
//
// The planner never executes anything: internal/sqlexec walks the tree. The
// split keeps the estimate/choose logic testable against fake sources and
// lets EXPLAIN render the same tree the executor runs, with estimated rows
// next to actuals.
package plan

import (
	"fmt"
	"strings"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/sqlparse"
)

// Source is the planner's read-only view of the database. It is a subset of
// sqlexec.Database, so any Database (including test fakes) is a Source.
type Source interface {
	TableDef(name string) (*catalog.TableDef, error)
	Segments(name string) ([]*colstore.Segment, error)
}

// ShardInfoProvider is implemented by the model manager: it reports whether
// a deployed model is sharded (stored as multiple coefficient blobs). The
// planner uses it to label PREDICT UDTF nodes as dot-product joins. Sources
// exposing extension services advertise it via ServiceSource.
type ShardInfoProvider interface {
	ShardInfo(name string) (shards int, ok bool)
}

// ServiceSource is optionally implemented by Sources that expose extension
// services (the model manager among them) to the planner.
type ServiceSource interface {
	Services() map[string]any
}

// Operator labels. Scan operators resolve a base table; the rest combine or
// shape child outputs.
const (
	OpSeqScan        = "SeqScan"
	OpIndexScan      = "IndexScan"
	OpHashJoin       = "HashJoin"
	OpDotProductJoin = "DotProductJoin"
	OpUDTF           = "UDTF"
	OpAggregate      = "Aggregate"
	OpProject        = "Project"
	OpSort           = "Sort"
	OpLimit          = "Limit"
	OpConst          = "Const"
)

// Access is a table scan's resolved access path. Primary is filtered exactly
// by the storage layer (row-level match for scans, index lookup for index
// scans); Zone predicates only skip sealed blocks whose zone maps rule every
// row out, so their conjuncts stay in Residual; Residual is the row filter
// evaluated over scanned batches.
type Access struct {
	Primary  *colstore.Pred
	Zone     []colstore.Pred
	Residual sqlparse.Expr
	// IndexCol non-empty selects the B-tree index scan on that column;
	// Primary is then the index probe predicate. Primary2, when set, is the
	// upper bound of a bounded index range probe (Primary the lower bound);
	// its conjunct also stays in Residual so a segment without the index
	// still filters exactly after the pushdown fallback scan.
	Primary2 *colstore.Pred
	IndexCol string
}

// Node is one physical operator. EstRows is the planner's output-cardinality
// estimate; actual rows are matched up after execution via MatchActuals.
type Node struct {
	ID       int
	Op       string
	Table    string // scan/UDTF nodes: base table
	Alias    string // scan nodes under a join: column-qualifying alias
	Cols     []string
	Access   *Access
	LeftKey  string // hash join: probe-side key column (qualified)
	RightKey string // hash join: build-side key column (qualified)
	Residual sqlparse.Expr
	Runs     bool   // aggregate: run-aware fast path eligible
	Fn       string // UDTF: function name
	Segs     int    // scan nodes: segments the scan fans out over
	Detail   string
	EstRows  int64
	Children []*Node
}

// Plan is a planned statement: the physical operator tree plus the
// normalized SELECT the executor walks it with (deep-copied; column
// references resolved, qualifiers stripped for single-table statements and
// rewritten to "alias.column" for joins).
type Plan struct {
	Root *Node
	Sel  *sqlparse.Select
}

type builder struct {
	src    Source
	nextID int
}

func (b *builder) node(op string) *Node {
	n := &Node{ID: b.nextID, Op: op}
	b.nextID++
	return n
}

// Build plans a SELECT. Errors mean the statement is outside the planner's
// reach (the caller falls back to the fixed pipeline) or genuinely invalid;
// join statements have no fallback, so their errors surface to the user.
func Build(sel *sqlparse.Select, src Source) (*Plan, error) {
	if sel == nil {
		return nil, fmt.Errorf("plan: nil statement")
	}
	if sel.NumParams > 0 {
		return nil, fmt.Errorf("plan: statement has unbound parameters")
	}
	sel = cloneSelect(sel)
	b := &builder{src: src}
	if sel.From == "" {
		if len(sel.Joins) > 0 {
			return nil, fmt.Errorf("plan: JOIN requires a FROM table")
		}
		n := b.node(OpConst)
		n.EstRows = 1
		n.Detail = "table-less SELECT"
		return &Plan{Root: n, Sel: sel}, nil
	}
	if len(sel.Joins) > 0 {
		return b.buildJoin(sel)
	}
	return b.buildSingle(sel)
}

// udtfCall mirrors the executor's dispatch: a single projection that is a
// function call with an OVER clause.
func udtfCall(sel *sqlparse.Select) *sqlparse.FuncCall {
	if len(sel.Items) != 1 || sel.Items[0].Star {
		return nil
	}
	fc, ok := sel.Items[0].Expr.(*sqlparse.FuncCall)
	if !ok || fc.Over == nil {
		return nil
	}
	return fc
}

func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func hasAggregate(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if isAggregateName(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *sqlparse.Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *sqlparse.Unary:
		return hasAggregate(x.X)
	}
	return false
}

func (b *builder) buildSingle(sel *sqlparse.Select) (*Plan, error) {
	def, err := b.src.TableDef(sel.From)
	if err != nil {
		return nil, err
	}
	if err := normalizeSingle(sel, def); err != nil {
		return nil, err
	}
	ts, err := gatherStats(b.src, sel.From, def)
	if err != nil {
		return nil, err
	}
	if fc := udtfCall(sel); fc != nil {
		return b.buildUDTF(sel, fc, def, ts)
	}
	scan := b.scanNode(sel.From, "", def, ts, sel.Where, false)
	ndv := func(col string) int { return ts.colStats(col).NDV }
	root, err := b.shapeAbove(scan, sel, ndv, sel.Where == nil)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Sel: sel}, nil
}

// scanNode plans one table's access path from the WHERE conjuncts that
// mention only this table. noIndex forces a sequential scan (the UDTF input
// path streams segments serially and has no gather step).
func (b *builder) scanNode(table, alias string, def *catalog.TableDef, ts *tableStats, where sqlparse.Expr, noIndex bool) *Node {
	conjs := analyzeConjuncts(where, ts)
	acc, estSel := chooseAccess(conjs, ts, noIndex)
	var n *Node
	if acc.IndexCol != "" {
		n = b.node(OpIndexScan)
		n.Detail = fmt.Sprintf("index(%s) %s", acc.IndexCol, predString(acc.Primary))
		if acc.Primary2 != nil {
			n.Detail += " AND " + predString(acc.Primary2)
		}
	} else {
		n = b.node(OpSeqScan)
		var parts []string
		if acc.Primary != nil {
			parts = append(parts, "pushdown "+predString(acc.Primary))
		}
		if len(acc.Zone) > 0 {
			zs := make([]string, len(acc.Zone))
			for i := range acc.Zone {
				zs[i] = predString(&acc.Zone[i])
			}
			parts = append(parts, "zone "+strings.Join(zs, " AND "))
		}
		n.Detail = strings.Join(parts, ", ")
	}
	if acc.Residual != nil {
		if n.Detail != "" {
			n.Detail += ", "
		}
		n.Detail += "filter " + acc.Residual.String()
	}
	n.Table = table
	n.Alias = alias
	n.Access = acc
	n.Segs = len(ts.segs)
	n.EstRows = estimateRows(ts.rows, estSel)
	return n
}

// shapeAbove stacks the non-scan operators (aggregate or project, sort,
// limit) over the input node, mirroring the executor's pipeline order.
// ndv resolves a group-by column name (dotted under a join) to its NDV.
func (b *builder) shapeAbove(in *Node, sel *sqlparse.Select, ndv func(col string) int, runsOK bool) (*Node, error) {
	agg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && hasAggregate(item.Expr) {
			agg = true
		}
	}
	cur := in
	if agg {
		n := b.node(OpAggregate)
		n.Children = []*Node{cur}
		n.EstRows = estimateGroups(sel.GroupBy, ndv, cur.EstRows)
		n.Runs = runsOK && in.Op == OpSeqScan && runsEligible(sel)
		if len(sel.GroupBy) > 0 {
			n.Detail = "GROUP BY " + strings.Join(sel.GroupBy, ", ")
		} else {
			n.Detail = "global"
		}
		if n.Runs {
			n.Detail += ", run-aware"
		}
		cur = n
	} else {
		n := b.node(OpProject)
		n.Children = []*Node{cur}
		n.EstRows = cur.EstRows
		n.Detail = fmt.Sprintf("%d columns", len(sel.Items))
		cur = n
	}
	if len(sel.OrderBy) > 0 {
		n := b.node(OpSort)
		n.Children = []*Node{cur}
		n.EstRows = cur.EstRows
		keys := make([]string, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			keys[i] = o.Col
			if o.Desc {
				keys[i] += " DESC"
			}
		}
		n.Detail = strings.Join(keys, ", ")
		cur = n
	}
	if sel.Limit >= 0 {
		n := b.node(OpLimit)
		n.Children = []*Node{cur}
		n.EstRows = min64(int64(sel.Limit), cur.EstRows)
		n.Detail = fmt.Sprintf("LIMIT %d", sel.Limit)
		cur = n
	}
	return cur, nil
}

// runsEligible mirrors the executor's run-aware aggregation preconditions
// (beyond "no WHERE", which the caller checks): every aggregate argument is
// a bare column, and star only under COUNT. The executor re-verifies at run
// time — the flag is advisory, for EXPLAIN and operator choice.
func runsEligible(sel *sqlparse.Select) bool {
	if !colstore.CompressedEvalEnabled() {
		return false
	}
	for _, item := range sel.Items {
		if item.Star {
			return false
		}
		fc, ok := item.Expr.(*sqlparse.FuncCall)
		if !ok {
			continue
		}
		if !isAggregateName(fc.Name) {
			return false
		}
		if fc.Star {
			if fc.Name != "COUNT" {
				return false
			}
			continue
		}
		if len(fc.Args) != 1 {
			return false
		}
		if _, ok := fc.Args[0].(*sqlparse.ColRef); !ok {
			return false
		}
	}
	return true
}

func (b *builder) buildUDTF(sel *sqlparse.Select, fc *sqlparse.FuncCall, def *catalog.TableDef, ts *tableStats) (*Plan, error) {
	if len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("plan: UDTF queries do not support GROUP BY")
	}
	scan := b.scanNode(sel.From, "", def, ts, sel.Where, true)
	n := b.node(OpUDTF)
	n.Fn = fc.Name
	n.Table = sel.From
	n.Children = []*Node{scan}
	n.EstRows = scan.EstRows
	n.Detail = fc.Name
	// PREDICT over a sharded model executes as a dot-product join: feature
	// batches join against model-coefficient shards, shard-major.
	if shards, ok := b.modelShards(fc); ok {
		n.Op = OpDotProductJoin
		n.Detail = fmt.Sprintf("%s, model sharded %d ways", fc.Name, shards)
	}
	cur := n
	if len(sel.OrderBy) > 0 {
		s := b.node(OpSort)
		s.Children = []*Node{cur}
		s.EstRows = cur.EstRows
		cur = s
	}
	if sel.Limit >= 0 {
		l := b.node(OpLimit)
		l.Children = []*Node{cur}
		l.EstRows = min64(int64(sel.Limit), cur.EstRows)
		l.Detail = fmt.Sprintf("LIMIT %d", sel.Limit)
		cur = l
	}
	return &Plan{Root: cur, Sel: sel}, nil
}

// modelShards resolves the UDTF's model parameter against the model manager
// (when the source exposes one) and reports the shard count of a sharded
// model deployment.
func (b *builder) modelShards(fc *sqlparse.FuncCall) (int, bool) {
	mexpr, ok := fc.Params["model"]
	if !ok {
		return 0, false
	}
	lit, ok := mexpr.(*sqlparse.StringLit)
	if !ok {
		return 0, false
	}
	sv, ok := b.src.(ServiceSource)
	if !ok {
		return 0, false
	}
	for _, svc := range sv.Services() {
		if p, ok := svc.(ShardInfoProvider); ok {
			if shards, ok := p.ShardInfo(lit.Val); ok {
				return shards, true
			}
		}
	}
	return 0, false
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func predString(p *colstore.Pred) string {
	return fmt.Sprintf("%s %s %v", p.Col, p.Op, p.Val)
}
