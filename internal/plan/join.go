package plan

import (
	"fmt"
	"math"

	"verticadr/internal/sqlparse"
)

// buildJoin plans a multi-table statement as a left-deep chain of hash
// joins: the base table is the probe side, each joined table builds a hash
// table on its equi-join key. Single-table WHERE conjuncts push down into
// the owning table's scan (index or sequential, chosen by cost); conjuncts
// spanning tables stay as a residual filter on the topmost join.
func (b *builder) buildJoin(sel *sqlparse.Select) (*Plan, error) {
	if udtfCall(sel) != nil {
		return nil, fmt.Errorf("plan: UDTF over a join is not supported")
	}
	refs := make([]tableRef, 0, len(sel.Joins)+1)
	addRef := func(table, alias string) error {
		if alias == "" {
			alias = table
		}
		for _, r := range refs {
			if r.alias == alias {
				return fmt.Errorf("plan: duplicate table alias %q", alias)
			}
		}
		def, err := b.src.TableDef(table)
		if err != nil {
			return err
		}
		ts, err := gatherStats(b.src, table, def)
		if err != nil {
			return err
		}
		refs = append(refs, tableRef{alias: alias, table: table, def: def, ts: ts})
		return nil
	}
	if err := addRef(sel.From, sel.FromAlias); err != nil {
		return nil, err
	}
	for _, j := range sel.Joins {
		if err := addRef(j.Table, j.Alias); err != nil {
			return nil, err
		}
	}
	if err := normalizeJoin(sel, refs); err != nil {
		return nil, err
	}

	// Classify WHERE conjuncts: single-table ones push into that table's
	// scan (rewritten to bare column names), the rest filter the join output.
	perTable := map[string][]sqlparse.Expr{}
	var topResidual []sqlparse.Expr
	for _, c := range flattenAnd(sel.Where) {
		als := exprAliases(c)
		if len(als) == 1 {
			var a string
			for k := range als {
				a = k
			}
			perTable[a] = append(perTable[a], stripAliasExpr(c, a))
		} else {
			topResidual = append(topResidual, c)
		}
	}

	needed := neededCols(sel, refs)
	scans := make([]*Node, len(refs))
	for i, r := range refs {
		scans[i] = b.scanNode(r.table, r.alias, r.def, r.ts, rebuildAnd(perTable[r.alias]), false)
		scans[i].Cols = needed[r.alias]
	}
	cur := scans[0]
	for i := range sel.Joins {
		lk, rk, err := joinKeys(sel.Joins[i].On, refs[:i+1], refs[i+1])
		if err != nil {
			return nil, err
		}
		n := b.node(OpHashJoin)
		n.Children = []*Node{cur, scans[i+1]}
		n.LeftKey, n.RightKey = lk, rk
		n.EstRows = estimateJoin(cur.EstRows, scans[i+1].EstRows, b.keyNDV(refs, lk), b.keyNDV(refs, rk))
		n.Detail = lk + " = " + rk
		cur = n
	}
	if len(topResidual) > 0 {
		cur.Residual = rebuildAnd(topResidual)
		cur.EstRows = estimateRows(int(cur.EstRows), math.Pow(defaultSel, float64(len(topResidual))))
		cur.Detail += ", filter " + cur.Residual.String()
	}
	ndv := func(col string) int { return b.keyNDV(refs, col) }
	root, err := b.shapeAbove(cur, sel, ndv, false)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Sel: sel}, nil
}

// keyNDV resolves a canonical "alias.column" name to its column NDV.
func (b *builder) keyNDV(refs []tableRef, name string) int {
	a := aliasPrefix(name)
	for _, r := range refs {
		if r.alias == a {
			return r.ts.colStats(name[len(a)+1:]).NDV
		}
	}
	return 0
}

// joinKeys validates an ON clause as `alias.col = alias.col` with one side
// in the left scope and the other naming the newly joined table, returning
// (probe key, build key) in canonical form.
func joinKeys(on sqlparse.Expr, left []tableRef, right tableRef) (string, string, error) {
	bin, ok := on.(*sqlparse.Binary)
	if !ok || bin.Op != "=" {
		return "", "", fmt.Errorf("plan: unsupported join condition %s (need col = col)", on.String())
	}
	lc, ok1 := bin.L.(*sqlparse.ColRef)
	rc, ok2 := bin.R.(*sqlparse.ColRef)
	if !ok1 || !ok2 {
		return "", "", fmt.Errorf("plan: unsupported join condition %s (need col = col)", on.String())
	}
	inLeft := func(name string) bool {
		a := aliasPrefix(name)
		for _, r := range left {
			if r.alias == a {
				return true
			}
		}
		return false
	}
	la, ra := aliasPrefix(lc.Name), aliasPrefix(rc.Name)
	switch {
	case inLeft(lc.Name) && ra == right.alias:
		return lc.Name, rc.Name, nil
	case inLeft(rc.Name) && la == right.alias:
		return rc.Name, lc.Name, nil
	}
	return "", "", fmt.Errorf("plan: join condition %s must reference both sides", on.String())
}

// exprAliases collects the table aliases an expression references.
func exprAliases(e sqlparse.Expr) map[string]bool {
	out := map[string]bool{}
	_ = walkColRefs(e, func(c *sqlparse.ColRef) error {
		if a := aliasPrefix(c.Name); a != "" {
			out[a] = true
		}
		return nil
	})
	return out
}

// neededCols computes, per table, the columns any part of the statement
// references, in table-schema order (deterministic regardless of expression
// order). SELECT * needs every column of every table.
func neededCols(sel *sqlparse.Select, refs []tableRef) map[string][]string {
	want := map[string]map[string]bool{}
	for _, r := range refs {
		want[r.alias] = map[string]bool{}
	}
	star := false
	add := func(c *sqlparse.ColRef) error {
		a := aliasPrefix(c.Name)
		if m, ok := want[a]; ok {
			m[c.Name[len(a)+1:]] = true
		}
		return nil
	}
	for _, it := range sel.Items {
		if it.Star {
			star = true
			continue
		}
		_ = walkColRefs(it.Expr, add)
	}
	if sel.Where != nil {
		_ = walkColRefs(sel.Where, add)
	}
	for i := range sel.Joins {
		_ = walkColRefs(sel.Joins[i].On, add)
	}
	addName := func(s string) {
		a := aliasPrefix(s)
		if m, ok := want[a]; ok {
			m[s[len(a)+1:]] = true
		}
	}
	for _, g := range sel.GroupBy {
		addName(g)
	}
	for _, o := range sel.OrderBy {
		addName(o.Col)
	}
	out := map[string][]string{}
	for _, r := range refs {
		var cols []string
		for _, cs := range r.def.Schema {
			if star || want[r.alias][cs.Name] {
				cols = append(cols, cs.Name)
			}
		}
		out[r.alias] = cols
	}
	return out
}
