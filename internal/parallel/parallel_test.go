package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"verticadr/internal/faults"
)

func TestDegreeResolution(t *testing.T) {
	defer SetDefaultDegree(0)
	SetDefaultDegree(0)
	if d := DefaultDegree(); d < 1 {
		t.Fatalf("default degree %d", d)
	}
	SetDefaultDegree(3)
	if d := DefaultDegree(); d != 3 {
		t.Fatalf("override degree %d, want 3", d)
	}
	if d := NewPool(0).Degree(); d != 3 {
		t.Fatalf("pool default degree %d, want 3", d)
	}
	if d := NewPool(7).Degree(); d != 7 {
		t.Fatalf("pool explicit degree %d, want 7", d)
	}
	var nilPool *Pool
	if d := nilPool.Degree(); d != 1 {
		t.Fatalf("nil pool degree %d, want 1", d)
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, deg := range []int{1, 2, 4, 9} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, 100)
		err := NewPool(deg).ForEach(100, func(i int) error {
			hits.Add(1)
			if seen[i].Swap(true) {
				return fmt.Errorf("index %d ran twice", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		if hits.Load() != 100 {
			t.Fatalf("degree %d: %d tasks ran, want 100", deg, hits.Load())
		}
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Index 3 fails fast, index 60 fails slow: the lowest-index failure that
	// ran must win regardless of completion order.
	err := NewPool(4).ForEach(100, func(i int) error {
		switch i {
		case 3:
			return errA
		case 2:
			time.Sleep(5 * time.Millisecond)
			return errB
		}
		return nil
	})
	if !errors.Is(err, errB) && !errors.Is(err, errA) {
		t.Fatalf("unexpected error %v", err)
	}
	// Index 2 was claimed before 3 (claims are sequential), so if it errored
	// it must shadow index 3's error.
	if !errors.Is(err, errB) {
		t.Fatalf("got %v, want lowest-index error %v", err, errB)
	}
}

func TestOrderedDeliversInOrder(t *testing.T) {
	for _, deg := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 5, 257} {
			var got []int
			err := Ordered(NewPool(deg), n,
				func(i int) (int, error) {
					time.Sleep(time.Duration(rand.Intn(200)) * time.Microsecond)
					return i * i, nil
				},
				func(i, v int) error {
					if v != i*i {
						return fmt.Errorf("index %d delivered %d", i, v)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatalf("degree %d n %d: %v", deg, n, err)
			}
			if len(got) != n {
				t.Fatalf("degree %d n %d: consumed %d", deg, n, len(got))
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("degree %d: out-of-order delivery %v", deg, got)
				}
			}
		}
	}
}

func TestOrderedFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, deg := range []int{1, 4} {
		var consumed []int
		err := Ordered(NewPool(deg), 50,
			func(i int) (int, error) {
				if i == 7 {
					return 0, boom
				}
				return i, nil
			},
			func(i, v int) error {
				consumed = append(consumed, i)
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("degree %d: err %v, want boom", deg, err)
		}
		// Everything before the failing index must have been delivered, in
		// order, and nothing at or after it.
		if len(consumed) != 7 {
			t.Fatalf("degree %d: consumed %v, want 0..6", deg, consumed)
		}
		for i, v := range consumed {
			if v != i {
				t.Fatalf("degree %d: consumed %v", deg, consumed)
			}
		}
	}
}

func TestOrderedConsumeError(t *testing.T) {
	halt := errors.New("halt")
	err := Ordered(NewPool(4), 100,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 10 {
				return halt
			}
			return nil
		})
	if !errors.Is(err, halt) {
		t.Fatalf("err %v, want halt", err)
	}
}

func TestReduceDeterministicAcrossDegrees(t *testing.T) {
	// Sum adversarially-scaled floats: any reordering of the fold changes the
	// bits, so equal bits across degrees prove the merge tree is fixed.
	vals := make([]float64, 1000)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.NormFloat64() * float64(int(1)<<(i%60))
	}
	run := func(deg int) float64 {
		s, err := Reduce(NewPool(deg), 100,
			func(i int) (float64, error) {
				var part float64
				for _, v := range vals[i*10 : (i+1)*10] {
					part += v
				}
				return part, nil
			},
			func(a, b float64) (float64, error) { return a + b, nil })
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := run(1)
	for _, deg := range []int{2, 3, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			if got := run(deg); got != want {
				t.Fatalf("degree %d rep %d: %x != %x", deg, rep, got, want)
			}
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	v, err := Reduce(NewPool(4), 0,
		func(i int) (int, error) { return 1, nil },
		func(a, b int) (int, error) { return a + b, nil })
	if err != nil || v != 0 {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestTaskFaultInjection(t *testing.T) {
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: SiteTask, Kind: faults.Error, EveryN: 5})
	faults.Install(in)
	defer faults.Install(nil)
	err := NewPool(4).ForEach(20, func(i int) error { return nil })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err %v, want injected fault", err)
	}
}

// TestChaosDelayInjectionKeepsResults arms delay-only rules at parallel.task
// and checks every combinator still produces exactly the serial result —
// stragglers must never reorder or corrupt output.
func TestChaosDelayInjectionKeepsResults(t *testing.T) {
	in := faults.New(42)
	in.MustArm(faults.Rule{Site: SiteTask, Kind: faults.Delay, Prob: 0.3, Delay: 500 * time.Microsecond})
	faults.Install(in)
	defer faults.Install(nil)

	var order []int
	err := Ordered(NewPool(8), 64,
		func(i int) (int, error) { return i * 3, nil },
		func(i, v int) error {
			if v != i*3 {
				return fmt.Errorf("index %d got %d", i, v)
			}
			order = append(order, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delayed tasks reordered delivery: %v", order)
		}
	}

	sum, err := Reduce(NewPool(8), 64,
		func(i int) (int, error) { return i, nil },
		func(a, b int) (int, error) { return a + b, nil })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 64*63/2 {
		t.Fatalf("sum %d", sum)
	}
}
