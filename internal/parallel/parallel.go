// Package parallel is the intra-node execution pool underneath the scan,
// aggregation and model-math hot paths. The paper's single-node speedups come
// from using every core on every node — Vertica executes segment scans
// block-parallel and Distributed R fans IRLS accumulation across R instances
// — and this package provides the one shared primitive both sides use: a
// bounded worker pool whose degree defaults to GOMAXPROCS, is overridable
// process-wide (config / the -j flag on the cmds), and degenerates to the
// plain serial loop at degree 1.
//
// Three combinators cover the repo's parallel shapes:
//
//   - ForEach: independent tasks, results written to caller-owned slots;
//   - Ordered: concurrent producers with strictly in-order consumption and a
//     bounded run-ahead window (block-parallel segment scans that must
//     deliver batches in block order without buffering the whole segment);
//   - Reduce: per-chunk partials merged by a deterministic pairwise tree, so
//     floating-point results are a function of the chunking alone — the same
//     bits at every degree, reproducible run to run.
//
// Every task passes through the faults site SiteTask ("parallel.task"), so
// chaos suites can stall or fail individual tasks, and the pool records
// telemetry: tasks executed, time tasks spent waiting for a worker, and time
// spent in reduction merges.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
)

// SiteTask is the fault-injection site every pool task passes through before
// its body runs. Delay rules model slow workers (stragglers); Error/Crash
// rules surface as the task's failure.
const SiteTask = "parallel.task"

var (
	mTasks     = telemetry.Default().Counter("parallel_tasks_total")
	mQueueWait = telemetry.Default().Counter("parallel_queue_wait_nanos_total")
	mMergeTime = telemetry.Default().Counter("parallel_merge_nanos_total")
)

// defaultDegree holds the process-wide override; 0 means GOMAXPROCS.
var defaultDegree atomic.Int64

// SetDefaultDegree overrides the process-wide default parallelism. n <= 0
// restores the GOMAXPROCS default. Degree 1 is the serial path: combinators
// run inline on the calling goroutine.
func SetDefaultDegree(n int) {
	if n < 0 {
		n = 0
	}
	defaultDegree.Store(int64(n))
}

// DefaultDegree returns the effective process-wide degree.
func DefaultDegree() int {
	if v := defaultDegree.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a degree-bounded task runner. Pools are cheap value objects — they
// hold no goroutines between calls; workers are spawned per combinator
// invocation and joined before it returns, so a Pool is safe for concurrent
// use and costs nothing when idle.
type Pool struct {
	degree int
}

// NewPool returns a pool of the given degree; degree <= 0 tracks the
// process-wide default (including later SetDefaultDegree changes).
func NewPool(degree int) *Pool {
	if degree < 0 {
		degree = 0
	}
	return &Pool{degree: degree}
}

// Default returns a pool tracking the process-wide default degree.
func Default() *Pool { return &Pool{} }

// Degree resolves the pool's effective degree. Nil pools are serial.
func (p *Pool) Degree() int {
	if p == nil {
		return 1
	}
	if p.degree > 0 {
		return p.degree
	}
	return DefaultDegree()
}

// taskGate runs the per-task prologue: telemetry plus the fault site.
func taskGate(started telemetry.Clock, t0 int64) error {
	mTasks.Inc()
	if t0 >= 0 {
		mQueueWait.Add(int64(started.Now()) - t0)
	}
	return faults.Check(SiteTask)
}

// ForEach runs fn(i) for every i in [0, n), using up to Degree goroutines.
// All indexes are attempted unless a task fails, after which no new indexes
// are claimed; already-running tasks complete. The returned error is the
// failure with the lowest index among those that ran — deterministic given a
// deterministic fn. At degree 1 it is the plain serial loop (stopping, like
// a serial loop, at the first failure).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	deg := p.Degree()
	if deg > n {
		deg = n
	}
	if deg <= 1 {
		for i := 0; i < n; i++ {
			if err := taskGate(nil, -1); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	clock := telemetry.Default().Clock()
	start := int64(clock.Now())
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < deg; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := taskGate(clock, start); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Ordered runs produce(i) for i in [0, n) concurrently and feeds the results
// to consume strictly in index order. Producers run at most window = 2×degree
// indexes ahead of the consumer, bounding memory to a constant number of
// in-flight results regardless of n. consume runs with full happens-before
// ordering against the producer of its value, but on varying goroutines; it
// must not be called concurrently with itself, and is not. On a produce or
// consume error, the lowest-index error is returned and later indexes are
// abandoned. Degree 1 interleaves produce/consume serially — zero buffering,
// exactly the classic scan loop.
func Ordered[T any](p *Pool, n int, produce func(i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	deg := p.Degree()
	if deg > n {
		deg = n
	}
	if deg <= 1 {
		for i := 0; i < n; i++ {
			if err := taskGate(nil, -1); err != nil {
				return err
			}
			v, err := produce(i)
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	clock := telemetry.Default().Clock()
	start := int64(clock.Now())
	window := 2 * deg
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		vals      = make([]T, n)
		ready     = make([]bool, n)
		taskErr   = make([]error, n)
		nextClaim int
		consumed  int
		stop      bool
	)
	var wg sync.WaitGroup
	for w := 0; w < deg; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !stop && nextClaim < n && nextClaim >= consumed+window {
					cond.Wait()
				}
				if stop || nextClaim >= n {
					mu.Unlock()
					return
				}
				i := nextClaim
				nextClaim++
				mu.Unlock()
				err := taskGate(clock, start)
				var v T
				if err == nil {
					v, err = produce(i)
				}
				mu.Lock()
				vals[i], taskErr[i], ready[i] = v, err, true
				if err != nil {
					stop = true
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	var firstErr error
	mu.Lock()
	for consumed < n {
		for !ready[consumed] {
			cond.Wait()
		}
		i := consumed
		if taskErr[i] != nil {
			firstErr = taskErr[i]
			break
		}
		v := vals[i]
		vals[i] = *new(T) // release the reference while the window advances
		mu.Unlock()
		err := consume(i, v)
		mu.Lock()
		consumed++
		if err != nil {
			firstErr = err
			break
		}
		cond.Broadcast()
	}
	stop = true
	cond.Broadcast()
	mu.Unlock()
	wg.Wait()
	return firstErr
}

// Reduce computes n partials concurrently and folds them with a
// deterministic pairwise tree merge: ((p0⊕p1)⊕(p2⊕p3))⊕… — the merge order
// is a function of n alone, never of scheduling, so floating-point folds
// produce identical bits at every degree and on every run. merge may mutate
// and return its first argument. n == 0 returns the zero T.
func Reduce[T any](p *Pool, n int, produce func(i int) (T, error), merge func(a, b T) (T, error)) (T, error) {
	var zero T
	if n <= 0 {
		return zero, nil
	}
	partials := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := produce(i)
		if err != nil {
			return err
		}
		partials[i] = v
		return nil
	})
	if err != nil {
		return zero, err
	}
	clock := telemetry.Default().Clock()
	t0 := clock.Now()
	for len(partials) > 1 {
		next := make([]T, 0, (len(partials)+1)/2)
		for i := 0; i < len(partials); i += 2 {
			if i+1 == len(partials) {
				next = append(next, partials[i])
				continue
			}
			m, err := merge(partials[i], partials[i+1])
			if err != nil {
				return zero, err
			}
			next = append(next, m)
		}
		partials = next
	}
	mMergeTime.AddDuration(clock.Now() - t0)
	return partials[0], nil
}
