// Package rbaseline is the stock-R stand-in the paper compares against in
// §7.3.1 (Figs. 17–18): strictly single-threaded implementations of K-means
// and linear regression. Its lm() deliberately solves the least-squares
// problem with a dense QR decomposition — "R uses matrix decomposition to
// implement regression, while Distributed R uses the Newton-Raphson
// technique" — so the same accuracy arrives with very different work, and
// none of it parallelizes.
package rbaseline

import (
	"fmt"
	"math"
	"math/rand"

	"verticadr/internal/linalg"
)

// KmeansResult is a single-node clustering fit.
type KmeansResult struct {
	Centers    [][]float64
	Iterations int
	Objective  float64
	Converged  bool
}

// Kmeans runs sequential Lloyd's iterations on an in-memory dataset; one
// goroutine, one core, exactly like calling kmeans() in an R console.
func Kmeans(points [][]float64, k, maxIter int, seed int64) (*KmeansResult, error) {
	n := len(points)
	if k <= 0 || n < k {
		return nil, fmt.Errorf("rbaseline: kmeans needs 1 <= K <= rows (K=%d, rows=%d)", k, n)
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	d := len(points[0])
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for i, idx := range rng.Perm(n)[:k] {
		c := make([]float64, d)
		copy(c, points[idx])
		centers[i] = c
	}
	res := &KmeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, d)
		}
		var obj float64
		for _, p := range points {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centers {
				if dd := linalg.SqDist(p, c); dd < bestD {
					best, bestD = ci, dd
				}
			}
			counts[best]++
			obj += bestD
			for j, v := range p {
				sums[best][j] += v
			}
		}
		var moved float64
		for ci := range centers {
			nc := make([]float64, d)
			if counts[ci] == 0 {
				copy(nc, centers[ci])
			} else {
				for j := range nc {
					nc[j] = sums[ci][j] / float64(counts[ci])
				}
			}
			moved += linalg.SqDist(nc, centers[ci])
			centers[ci] = nc
		}
		res.Iterations = iter + 1
		res.Objective = obj
		if math.Sqrt(moved) < 1e-4 {
			res.Converged = true
			break
		}
	}
	res.Centers = centers
	return res, nil
}

// LMResult is a single-node regression fit.
type LMResult struct {
	Coefficients []float64 // intercept first
}

// LM fits ordinary least squares by materializing the full design matrix
// (with intercept column) and running a Householder QR decomposition — the
// O(n·p²) single-threaded path of stock R's lm().
func LM(x [][]float64, y []float64) (*LMResult, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("rbaseline: lm needs matching non-empty x and y")
	}
	p := len(x[0]) + 1
	design := linalg.NewMatrix(n, p)
	for i, row := range x {
		design.Set(i, 0, 1)
		for j, v := range row {
			design.Set(i, j+1, v)
		}
	}
	beta, err := linalg.QRSolve(design, y)
	if err != nil {
		return nil, fmt.Errorf("rbaseline: lm: %w", err)
	}
	return &LMResult{Coefficients: beta}, nil
}

// Predict applies the fitted coefficients to one feature row.
func (m *LMResult) Predict(row []float64) float64 {
	v := m.Coefficients[0]
	for j, x := range row {
		v += m.Coefficients[j+1] * x
	}
	return v
}
