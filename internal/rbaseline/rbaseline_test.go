package rbaseline

import (
	"math"
	"testing"

	"verticadr/internal/workload"
)

func TestKmeansRecovery(t *testing.T) {
	data := workload.GenKmeans(1, 400, 3, 3, 0.1)
	res, err := Kmeans(data.Points, 3, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for _, pc := range data.Centers {
		best := math.Inf(1)
		for _, fc := range res.Centers {
			d := 0.0
			for j := range pc {
				d += (pc[j] - fc[j]) * (pc[j] - fc[j])
			}
			if d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 1 {
			t.Fatalf("center not recovered (%v)", math.Sqrt(best))
		}
	}
}

func TestKmeansValidation(t *testing.T) {
	if _, err := Kmeans([][]float64{{1}}, 2, 10, 1); err == nil {
		t.Fatal("K > n should fail")
	}
	if _, err := Kmeans([][]float64{{1}}, 0, 10, 1); err == nil {
		t.Fatal("K = 0 should fail")
	}
}

func TestLMMatchesPlantedBeta(t *testing.T) {
	data := workload.GenLinear(5, 3000, 4, 0.01)
	res, err := LM(data.X, data.Y)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data.Beta {
		if math.Abs(res.Coefficients[i]-b) > 0.01 {
			t.Fatalf("coef %d = %v want %v", i, res.Coefficients[i], b)
		}
	}
	if math.Abs(res.Predict(data.X[0])-data.Y[0]) > 0.1 {
		t.Fatal("prediction off")
	}
}

func TestLMValidation(t *testing.T) {
	if _, err := LM(nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := LM([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

// The two solvers (QR here, Newton–Raphson in internal/algos) must agree —
// checked again at higher level in the ablation bench; this is the unit
// guard.
func TestLMAgreesWithNormalEquationsShape(t *testing.T) {
	data := workload.GenLinear(9, 500, 2, 0)
	res, err := LM(data.X, data.Y)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless: residuals ~ 0.
	for i := 0; i < 50; i++ {
		if math.Abs(res.Predict(data.X[i])-data.Y[i]) > 1e-8 {
			t.Fatalf("residual too large at %d", i)
		}
	}
}
