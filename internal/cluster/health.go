package cluster

import (
	"context"
	"time"

	"verticadr/internal/server"
)

// ProbeHealth dials each address directly and collects its self-report:
// the client-side view of the cluster, independent of any router's
// bookkeeping. Unreachable peers come back with Up == false rather than
// an error — partial clusters are an expected state.
func ProbeHealth(ctx context.Context, addrs []string, dialTimeout time.Duration) []NodeHealth {
	out := make([]NodeHealth, len(addrs))
	for i, addr := range addrs {
		out[i] = NodeHealth{Node: i, Addr: addr}
		c, err := server.DialTimeout(addr, dialTimeout)
		if err != nil {
			continue
		}
		var rep healthReply
		if err := c.Call(ctx, opHealth, struct{}{}, &rep); err == nil {
			out[i].Up = true
			out[i].Shards = rep.Shards
		}
		_ = c.Close()
	}
	return out
}

// DiscoverHealth probes a cluster known by any subset of its addresses:
// the first reachable peer reports the full address list, and every
// member of that list is then probed individually. A client dialed at one
// node thereby sees the whole cluster's health. When no peer answers (or
// none reports a peer list — a pre-discovery server), the given addresses
// are probed as-is.
func DiscoverHealth(ctx context.Context, addrs []string, dialTimeout time.Duration) []NodeHealth {
	for _, addr := range addrs {
		c, err := server.DialTimeout(addr, dialTimeout)
		if err != nil {
			continue
		}
		var rep healthReply
		err = c.Call(ctx, opHealth, struct{}{}, &rep)
		_ = c.Close()
		if err == nil && len(rep.Peers) > 0 {
			return ProbeHealth(ctx, rep.Peers, dialTimeout)
		}
	}
	return ProbeHealth(ctx, addrs, dialTimeout)
}
