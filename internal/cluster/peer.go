package cluster

import (
	"context"
	"encoding/json"
	"fmt"

	"verticadr/internal/server"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/telemetry"
	"verticadr/internal/vertica"
	"verticadr/internal/vft"
)

var (
	mPeerOps = func(op string) *telemetry.Counter {
		return telemetry.Default().Counter("cluster_peer_ops_total", telemetry.L("op", op))
	}
	mPeerShardRows = telemetry.Default().Counter("cluster_peer_shard_rows_total")
	mPeerLoadRows  = telemetry.Default().Counter("cluster_peer_load_rows_total")
)

// Peer serves the cluster's shard-level protocol on one node. It is a
// server.Extension: registered on the node's TCPServer it answers the
// cl.* ops against the node's local database, whose segment layout is the
// cluster's shard layout (the database opens with Topology.Shards nodes
// and only the shards placed on this peer ever receive rows).
//
// Read ops run under the serving layer's admission control (Server.Admit),
// so a saturated peer sheds shard work with verr.ErrOverloaded and the
// router retries the shard on a replica. Write ops (cl.load) bypass
// admission: a shed write would falsely mark the replica stale, and the
// WAL group commit already paces concurrent loads.
type Peer struct {
	srv  *server.Server
	db   *vertica.DB
	topo Topology
	node int
}

// NewPeer wraps srv as cluster peer node of topo (not validated against
// the database's node count; the caller opens the database with
// topo.Shards nodes).
func NewPeer(srv *server.Server, topo Topology, node int) *Peer {
	return &Peer{srv: srv, db: srv.Session().DB, topo: topo, node: node}
}

var _ server.Extension = (*Peer)(nil)

// ServeExt dispatches one cluster op.
func (p *Peer) ServeExt(ctx context.Context, op string, payload json.RawMessage) (any, error) {
	mPeerOps(op).Inc()
	switch op {
	case opSelect:
		var req selectRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
		}
		return p.serveSelect(ctx, req)
	case opAgg:
		var req aggRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
		}
		return p.serveAgg(ctx, req)
	case opExplain:
		var req explainRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
		}
		return p.serveExplain(ctx, req)
	case opLoad:
		var req loadRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
		}
		return p.serveLoad(ctx, req)
	case opExec:
		var req execRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
		}
		return p.serveExec(ctx, req)
	case opTableDef:
		var req tableDefRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
		}
		return p.db.TableDef(req.Table)
	case opHealth:
		h := p.srv.Health()
		return healthReply{
			Node:      p.node,
			Shards:    p.topo.OwnedShards(p.node),
			Peers:     p.topo.Addrs,
			Epoch:     p.db.CatalogEpoch(),
			Inflight:  int(h.Inflight),
			Queued:    int(h.Queued),
			Saturated: h.Saturated,
		}, nil
	}
	return nil, fmt.Errorf("cluster: unknown op %q", op)
}

// checkShards validates a requested shard list against this peer's
// ownership.
func (p *Peer) checkShards(shards []int) error {
	if len(shards) == 0 {
		return fmt.Errorf("cluster: empty shard list")
	}
	for _, s := range shards {
		if s < 0 || s >= p.topo.Shards {
			return fmt.Errorf("cluster: no shard %d", s)
		}
		if !p.topo.Owns(p.node, s) {
			return fmt.Errorf("cluster: peer %d does not own shard %d", p.node, s)
		}
	}
	return nil
}

func parseSelect(sql string) (*sqlparse.Select, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("cluster: expected SELECT, got %T", stmt)
	}
	return sel, nil
}

// serveSelect runs the SELECT once per requested shard over a restricted
// snapshot view and returns each shard's finished rows as a vft chunk.
// Each shard view pins its own snapshot; the shards of one request may
// observe different commit timestamps, exactly as separate nodes of a real
// cluster answer from their own commit horizons.
func (p *Peer) serveSelect(ctx context.Context, req selectRequest) (*selectReply, error) {
	if err := p.checkShards(req.Shards); err != nil {
		return nil, err
	}
	sel, err := parseSelect(req.SQL)
	if err != nil {
		return nil, err
	}
	reply := &selectReply{}
	_, err = p.srv.Admit(ctx, req.SQL, func(ctx context.Context) (*sqlexec.Result, error) {
		for _, s := range req.Shards {
			view, release := p.db.ShardView([]int{s})
			res, err := sqlexec.RunSelectCtx(ctx, view, sel)
			release()
			if err != nil {
				return nil, err
			}
			chunk, err := vft.EncodeChunk(res.Batch)
			if err != nil {
				return nil, err
			}
			if reply.Cols == nil {
				for _, c := range res.Batch.Schema {
					reply.Cols = append(reply.Cols, c.Name)
					reply.Types = append(reply.Types, c.Type)
				}
				if reply.Cols == nil {
					reply.Cols = []string{}
				}
			}
			reply.Chunks = append(reply.Chunks, chunk)
			mPeerShardRows.Add(int64(res.Batch.Len()))
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// serveAgg computes one aggregate partial per requested shard.
func (p *Peer) serveAgg(ctx context.Context, req aggRequest) (*aggReply, error) {
	if err := p.checkShards(req.Shards); err != nil {
		return nil, err
	}
	sel, err := parseSelect(req.SQL)
	if err != nil {
		return nil, err
	}
	reply := &aggReply{}
	_, err = p.srv.Admit(ctx, req.SQL, func(ctx context.Context) (*sqlexec.Result, error) {
		for _, s := range req.Shards {
			view, release := p.db.ShardView([]int{s})
			part, err := sqlexec.RunPartialAggregate(ctx, view, sel)
			release()
			if err != nil {
				return nil, err
			}
			wp, err := encodeAggPartial(part)
			if err != nil {
				return nil, err
			}
			reply.Partials = append(reply.Partials, wp)
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// serveExplain plans the statement against a view restricted to the
// requested shards (the peer's own shards, typically) and returns the plan
// rows as text.
func (p *Peer) serveExplain(ctx context.Context, req explainRequest) (*explainReply, error) {
	if err := p.checkShards(req.Shards); err != nil {
		return nil, err
	}
	stmt, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	ex, ok := stmt.(*sqlparse.Explain)
	if !ok {
		return nil, fmt.Errorf("cluster: expected EXPLAIN, got %T", stmt)
	}
	view, release := p.db.ShardView(req.Shards)
	defer release()
	res, err := sqlexec.RunExplainCtx(ctx, view, ex)
	if err != nil {
		return nil, err
	}
	reply := &explainReply{}
	for _, c := range res.Schema() {
		reply.Cols = append(reply.Cols, c.Name)
	}
	for _, row := range res.Rows() {
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = fmt.Sprint(v)
		}
		reply.Rows = append(reply.Rows, out)
	}
	return reply, nil
}

// serveLoad appends a router-split batch to one shard (or, with Shard ==
// -1, through the peer's own segmentation — the single-node passthrough).
func (p *Peer) serveLoad(ctx context.Context, req loadRequest) (*loadReply, error) {
	if err := verrCanceled(ctx); err != nil {
		return nil, err
	}
	def, err := p.db.TableDef(req.Table)
	if err != nil {
		return nil, err
	}
	b, err := vft.DecodeChunk(req.Chunk, def.Schema)
	if err != nil {
		return nil, err
	}
	if req.Shard == -1 {
		err = p.db.Load(req.Table, b)
	} else {
		if err := p.checkShards([]int{req.Shard}); err != nil {
			return nil, err
		}
		err = p.db.LoadAt(req.Table, req.Shard, b)
	}
	if err != nil {
		return nil, err
	}
	mPeerLoadRows.Add(int64(b.Len()))
	return &loadReply{Rows: b.Len()}, nil
}

// serveExec runs a broadcast DDL statement locally. INSERT and SELECT are
// refused: the router splits INSERTs itself (a broadcast would duplicate
// rows) and SELECTs travel through the shard ops.
func (p *Peer) serveExec(ctx context.Context, req execRequest) (*execReply, error) {
	stmt, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sqlparse.Select, *sqlparse.Explain, *sqlparse.Insert:
		return nil, fmt.Errorf("cluster: %T is not broadcastable", stmt)
	}
	if _, err := p.db.RunStatement(ctx, stmt, req.SQL); err != nil {
		return nil, err
	}
	return &execReply{}, nil
}
