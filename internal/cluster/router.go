package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/server"
	"verticadr/internal/sqlexec"
	"verticadr/internal/sqlparse"
	"verticadr/internal/telemetry"
	"verticadr/internal/udf"
	"verticadr/internal/verr"
	"verticadr/internal/vertica"
	"verticadr/internal/vft"
)

var (
	mShardCalls = func(outcome string) *telemetry.Counter {
		return telemetry.Default().Counter("cluster_shard_calls_total", telemetry.L("outcome", outcome))
	}
	mFailovers    = telemetry.Default().Counter("cluster_failovers_total")
	mRetries      = telemetry.Default().Counter("cluster_retries_total")
	mStaleMarks   = telemetry.Default().Counter("cluster_stale_replicas_total")
	mRouterLoads  = telemetry.Default().Counter("cluster_router_load_rows_total")
	mRouterRouted = func(kind string) *telemetry.Counter {
		return telemetry.Default().Counter("cluster_routed_queries_total", telemetry.L("kind", kind))
	}
)

func gPeerUp(node int) *telemetry.Gauge {
	return telemetry.Default().Gauge("cluster_peer_up", telemetry.L("peer", fmt.Sprint(node)))
}

// Config configures a Router.
type Config struct {
	// Addrs, Shards, Replicas describe the topology (see Topology).
	Addrs    []string
	Shards   int
	Replicas int
	// ProbeInterval paces background health probes of peers marked down
	// (default 250ms; < 0 disables probing).
	ProbeInterval time.Duration
	// DialTimeout bounds each peer connection attempt (default 2s).
	DialTimeout time.Duration
}

// Router owns the cluster topology and fans queries out to the peers. It
// implements server.Frontend, so a vdr-serve peer can put it in front of
// its own TCP listener: any node of the cluster then answers any query
// with cluster-wide results.
//
// Reads (SELECT / PREDICT / EXPLAIN) are idempotent: a shard read that
// fails on one replica — connection torn down, peer draining, admission
// shed with verr.ErrOverloaded — retries on the shard's next replica, and
// only when every replica is unusable does the query fail, with
// verr.ErrNodeDown. Writes (COPY / INSERT / DDL) go to every replica; a
// replica that misses a write is marked stale and never read again.
type Router struct {
	topo  Topology
	cfg   Config
	pools []*pool

	mu       sync.Mutex
	down     []bool
	stale    [][]bool // [peer][shard]: true after a missed write
	tables   map[string]*routedTable
	prepared map[string]*sqlparse.Select
	closed   bool

	probeWG   sync.WaitGroup
	probeStop chan struct{}
}

// routedTable caches a table's definition and its stateful splitter (the
// round-robin cursor must persist across COPY batches to reproduce the
// single-process engine's row placement).
type routedTable struct {
	def   *catalog.TableDef
	split *catalog.Splitter
}

// NewRouter validates the topology and starts the health prober. It does
// not contact the peers: a cluster whose nodes are still starting becomes
// usable as soon as they are.
func NewRouter(cfg Config) (*Router, error) {
	topo, err := Topology{Addrs: cfg.Addrs, Shards: cfg.Shards, Replicas: cfg.Replicas}.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	r := &Router{
		topo:      topo,
		cfg:       cfg,
		down:      make([]bool, len(topo.Addrs)),
		stale:     make([][]bool, len(topo.Addrs)),
		tables:    map[string]*routedTable{},
		prepared:  map[string]*sqlparse.Select{},
		probeStop: make(chan struct{}),
	}
	for i, addr := range topo.Addrs {
		r.pools = append(r.pools, &pool{addr: addr, dialTimeout: cfg.DialTimeout})
		r.stale[i] = make([]bool, topo.Shards)
		gPeerUp(i).Set(1)
	}
	if cfg.ProbeInterval > 0 {
		r.probeWG.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Topology returns the router's normalized topology.
func (r *Router) Topology() Topology { return r.topo }

// Close stops the prober and closes pooled connections.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.probeStop)
	r.probeWG.Wait()
	for _, p := range r.pools {
		p.closeAll()
	}
}

// NodeHealth is one peer's state as the router sees it.
type NodeHealth struct {
	Node   int    `json:"node"`
	Addr   string `json:"addr"`
	Up     bool   `json:"up"`
	Shards []int  `json:"shards"` // shards placed on the peer
	Stale  []int  `json:"stale,omitempty"`
}

// Health reports the per-peer cluster state for the admin surface.
func (r *Router) Health() []NodeHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeHealth, len(r.topo.Addrs))
	for i, addr := range r.topo.Addrs {
		h := NodeHealth{Node: i, Addr: addr, Up: !r.down[i], Shards: r.topo.OwnedShards(i)}
		for s, st := range r.stale[i] {
			if st {
				h.Stale = append(h.Stale, s)
			}
		}
		out[i] = h
	}
	return out
}

func (r *Router) isDown(peer int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down[peer]
}

func (r *Router) markDown(peer int) {
	r.mu.Lock()
	was := r.down[peer]
	r.down[peer] = true
	r.mu.Unlock()
	if !was {
		// Idle connections to a dead peer are dead too; drop them so the
		// restored peer starts from fresh dials instead of failing calls.
		r.pools[peer].flush()
		gPeerUp(peer).Set(0)
		mFailovers.Inc()
	}
}

func (r *Router) markUp(peer int) {
	r.mu.Lock()
	r.down[peer] = false
	r.mu.Unlock()
	gPeerUp(peer).Set(1)
}

// markStale permanently excludes one (peer, shard) replica after a missed
// write. There is no replica re-sync in this version: the replica would
// serve short reads, so it must never serve reads again.
func (r *Router) markStale(peer, shard int) {
	r.mu.Lock()
	was := r.stale[peer][shard]
	r.stale[peer][shard] = true
	r.mu.Unlock()
	if !was {
		mStaleMarks.Inc()
	}
}

func (r *Router) isStale(peer, shard int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale[peer][shard]
}

// probeLoop pings peers marked down and restores them when they answer.
// A restored peer serves only the shards it never missed a write for
// (stale flags survive the bounce).
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-ticker.C:
		}
		for peer := range r.pools {
			if !r.isDown(peer) {
				continue
			}
			// Probe over a fresh dial: any idle connection to a peer that
			// was marked down predates the outage and proves nothing.
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout)
			c, err := r.pools[peer].dial()
			if err == nil {
				if err = c.Ping(ctx); err == nil {
					r.pools[peer].put(c)
					r.markUp(peer)
				} else {
					_ = c.Close()
				}
			}
			cancel()
		}
	}
}

// retryable reports whether a shard-read failure should move to the next
// replica: the peer was unreachable (verr.ErrNodeDown), closing
// (verr.ErrClosed) or shedding (verr.ErrOverloaded). Cancellation and
// genuine query errors propagate.
func retryable(err error) bool {
	if errors.Is(err, verr.ErrCanceled) {
		return false
	}
	return errors.Is(err, verr.ErrNodeDown) || errors.Is(err, verr.ErrClosed) ||
		errors.Is(err, verr.ErrOverloaded)
}

// connFailure reports whether the failure indicates the peer itself is
// unusable (as opposed to merely busy).
func connFailure(err error) bool {
	return errors.Is(err, verr.ErrNodeDown) || errors.Is(err, verr.ErrClosed)
}

// peerCall round-trips one extension op on one peer over a pooled
// connection. A failed connection is dropped, not reused.
//
// A pooled connection can be long dead — the peer restarted since it went
// idle — and failing the call on it would misclassify a healthy peer as
// down. So when a *pooled* connection fails, the call retries once on a
// freshly dialed connection (flushing the idle siblings, which predate the
// same restart): always when the request provably never reached the peer
// (server.RequestNotSent), and on any connection-level failure when the op
// is idempotent. Only the fresh connection's verdict classifies the peer.
func (r *Router) peerCall(ctx context.Context, peer int, op string, idempotent bool, payload, reply any) error {
	c, pooled, err := r.pools[peer].get()
	if err != nil {
		return err
	}
	err = c.Call(ctx, op, payload, reply)
	if err == nil {
		r.pools[peer].put(c)
		return nil
	}
	_ = c.Close()
	if pooled && (server.RequestNotSent(err) || (idempotent && connFailure(err))) {
		r.pools[peer].flush()
		c2, err2 := r.pools[peer].dial()
		if err2 != nil {
			return err2
		}
		if err2 := c2.Call(ctx, op, payload, reply); err2 != nil {
			_ = c2.Close()
			return err2
		}
		r.pools[peer].put(c2)
		return nil
	}
	return err
}

// shardCall runs an idempotent read against shard's replicas in ring
// order, failing over on retryable errors. Peers marked down or stale for
// this shard are skipped up front.
func (r *Router) shardCall(ctx context.Context, shard int, op string, payload, reply any) error {
	var lastErr error
	tried, sawConnFailure := 0, false
	for _, peer := range r.topo.Owners(shard) {
		if r.isStale(peer, shard) {
			continue
		}
		if r.isDown(peer) {
			continue
		}
		if tried > 0 {
			mRetries.Inc()
		}
		tried++
		err := r.peerCall(ctx, peer, op, true, payload, reply)
		if err == nil {
			mShardCalls("ok").Inc()
			return nil
		}
		lastErr = err
		if connFailure(err) {
			sawConnFailure = true
			r.markDown(peer)
		}
		if !retryable(err) {
			mShardCalls("error").Inc()
			return err
		}
		mShardCalls("retry").Inc()
	}
	// Every reachable replica shed the read: that is admission back-pressure,
	// not a dead shard. Keep the ErrOverloaded identity so clients back off
	// instead of treating it as a transport failure and failing over (which
	// would turn one overloaded shard into a cross-node retry storm).
	if lastErr != nil && !sawConnFailure && errors.Is(lastErr, verr.ErrOverloaded) {
		mShardCalls("shed").Inc()
		return fmt.Errorf("cluster: shard %d: every replica shedding: %w", shard, lastErr)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no usable replica")
	}
	mShardCalls("down").Inc()
	return fmt.Errorf("cluster: shard %d: %w: %v", shard, verr.ErrNodeDown, lastErr)
}

// fanOut runs fn for every shard concurrently and returns the first error.
func (r *Router) fanOut(ctx context.Context, fn func(shard int) error) error {
	errs := make([]error, r.topo.Shards)
	var wg sync.WaitGroup
	for s := 0; s < r.topo.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func verrCanceled(ctx context.Context) error { return verr.Canceled(ctx.Err()) }

func emptyResult() *sqlexec.Result {
	return &sqlexec.Result{Batch: colstore.NewBatch(colstore.Schema{})}
}

// ---- Frontend: routed SQL ----

var _ server.Frontend = (*Router)(nil)

// Query parses and routes one SQL statement: SELECTs fan out over the
// shards and merge deterministically, INSERTs split by the table's
// segmentation, DDL broadcasts to every peer.
func (r *Router) Query(ctx context.Context, sql string) (*sqlexec.Result, error) {
	if err := verrCanceled(ctx); err != nil {
		return nil, err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return r.routeSelect(ctx, s)
	case *sqlparse.Explain:
		return r.routeExplain(ctx, sql)
	case *sqlparse.Insert:
		if err := r.routeInsert(ctx, s); err != nil {
			return nil, err
		}
		return emptyResult(), nil
	default:
		if err := r.broadcastExec(ctx, sql, stmt); err != nil {
			return nil, err
		}
		return emptyResult(), nil
	}
}

// Prepare parses and stores a SELECT template locally; Execute binds and
// routes it. Preparation is router-side (each peer re-parses the bound
// SQL), so prepared names need not exist on any peer.
func (r *Router) Prepare(name, sql string) error {
	if name == "" {
		return fmt.Errorf("cluster: empty statement name")
	}
	sel, err := parseSelect(sql)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.prepared[name] = sel
	r.mu.Unlock()
	return nil
}

// Execute binds args to a prepared SELECT and routes it.
func (r *Router) Execute(ctx context.Context, name string, args ...any) (*sqlexec.Result, error) {
	r.mu.Lock()
	sel := r.prepared[name]
	r.mu.Unlock()
	if sel == nil {
		return nil, fmt.Errorf("cluster: no prepared statement %q", name)
	}
	bound, err := sqlparse.BindSelect(sel, args)
	if err != nil {
		return nil, err
	}
	return r.routeSelect(ctx, bound)
}

// shardSQL renders the statement sent to peers: identical to the client's
// statement minus PROFILE (profiles are per-process; the router's merge is
// not an engine operator pipeline).
func shardSQL(sel *sqlparse.Select) string {
	cp := *sel
	cp.Profile = false
	return cp.String()
}

func (r *Router) routeSelect(ctx context.Context, sel *sqlparse.Select) (*sqlexec.Result, error) {
	switch {
	case len(sel.Joins) > 0:
		mRouterRouted("gather").Inc()
		return r.gatherSelect(ctx, sel)
	case sel.From == "":
		// Constant SELECT: no table, evaluated at the router.
		mRouterRouted("const").Inc()
		return sqlexec.RunSelectCtx(ctx, nil, sel)
	case sqlexec.IsAggregateSelect(sel):
		mRouterRouted("aggregate").Inc()
		return r.aggSelect(ctx, sel)
	default:
		mRouterRouted("rows").Inc()
		return r.rowsSelect(ctx, sel)
	}
}

// rowsSelect fans a projection / UDTF statement out per shard and merges:
// every shard runs the statement (including its ORDER BY and LIMIT, which
// are sound to apply per shard and are re-applied globally), then shard
// outputs concatenate in shard order — or k-way merge when ordered, which
// is bitwise the stable sort of the concatenation.
func (r *Router) rowsSelect(ctx context.Context, sel *sqlparse.Select) (*sqlexec.Result, error) {
	ctx, span := telemetry.StartChildCtx(ctx, "router.rows")
	defer span.End()
	sql := shardSQL(sel)
	batches := make([]*colstore.Batch, r.topo.Shards)
	err := r.fanOut(ctx, func(shard int) error {
		var rep selectReply
		if err := r.shardCall(ctx, shard, opSelect, selectRequest{SQL: sql, Shards: []int{shard}}, &rep); err != nil {
			return err
		}
		if len(rep.Chunks) != 1 || len(rep.Cols) != len(rep.Types) {
			return fmt.Errorf("cluster: malformed shard %d select reply", shard)
		}
		schema := make(colstore.Schema, len(rep.Cols))
		for i := range rep.Cols {
			schema[i] = colstore.ColumnSchema{Name: rep.Cols[i], Type: rep.Types[i]}
		}
		b, err := vft.DecodeChunk(rep.Chunks[0], schema)
		if err != nil {
			return err
		}
		batches[shard] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sqlexec.MergeShardRows(ctx, sel, batches)
}

// aggSelect fans an aggregate out per shard, collecting partial states,
// and folds them in shard order — the distributed continuation of the
// engine's chunk-merge tree, finalized (AVG division, ORDER BY, LIMIT)
// once at the router.
func (r *Router) aggSelect(ctx context.Context, sel *sqlparse.Select) (*sqlexec.Result, error) {
	ctx, span := telemetry.StartChildCtx(ctx, "router.aggregate")
	defer span.End()
	sql := shardSQL(sel)
	parts := make([]*sqlexec.AggPartial, r.topo.Shards)
	err := r.fanOut(ctx, func(shard int) error {
		var rep aggReply
		if err := r.shardCall(ctx, shard, opAgg, aggRequest{SQL: sql, Shards: []int{shard}}, &rep); err != nil {
			return err
		}
		if len(rep.Partials) != 1 {
			return fmt.Errorf("cluster: malformed shard %d agg reply", shard)
		}
		p, err := decodeAggPartial(rep.Partials[0])
		if err != nil {
			return err
		}
		parts[shard] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sqlexec.MergeAggPartials(ctx, sel, parts)
}

// gatherDB is the router-side fallback database for statements without a
// distributed execution (joins): whole tables gathered shard by shard and
// rebuilt as one local segment per shard, in shard order, which reproduces
// the row order — and therefore the bitwise results — of the single-
// process engine.
type gatherDB struct {
	defs map[string]*catalog.TableDef
	segs map[string][]*colstore.Segment
	udfs *udf.Registry
}

func (g *gatherDB) TableDef(name string) (*catalog.TableDef, error) {
	def, ok := g.defs[name]
	if !ok {
		return nil, fmt.Errorf("cluster: %w: %q", verr.ErrTableNotFound, name)
	}
	return def, nil
}

func (g *gatherDB) Segments(name string) ([]*colstore.Segment, error) {
	segs, ok := g.segs[name]
	if !ok {
		return nil, fmt.Errorf("cluster: %w: %q", verr.ErrTableNotFound, name)
	}
	return segs, nil
}

func (g *gatherDB) UDFs() *udf.Registry      { return g.udfs }
func (g *gatherDB) UDFInstancesPerNode() int { return 4 }
func (g *gatherDB) Services() map[string]any { return nil }

var _ sqlexec.Database = (*gatherDB)(nil)

// gatherSelect executes a join at the router over gathered tables. The
// shard fetches are the same failover-capable reads as any SELECT.
func (r *Router) gatherSelect(ctx context.Context, sel *sqlparse.Select) (*sqlexec.Result, error) {
	ctx, span := telemetry.StartChildCtx(ctx, "router.gather")
	defer span.End()
	names := []string{sel.From}
	for _, j := range sel.Joins {
		names = append(names, j.Table)
	}
	g := &gatherDB{
		defs: map[string]*catalog.TableDef{},
		segs: map[string][]*colstore.Segment{},
		udfs: udf.NewRegistry(),
	}
	for _, name := range names {
		if _, ok := g.defs[name]; ok {
			continue
		}
		rt, err := r.table(ctx, name)
		if err != nil {
			return nil, err
		}
		segs := make([]*colstore.Segment, r.topo.Shards)
		sql := "SELECT * FROM " + name
		err = r.fanOut(ctx, func(shard int) error {
			var rep selectReply
			if err := r.shardCall(ctx, shard, opSelect, selectRequest{SQL: sql, Shards: []int{shard}}, &rep); err != nil {
				return err
			}
			if len(rep.Chunks) != 1 {
				return fmt.Errorf("cluster: malformed shard %d gather reply", shard)
			}
			b, err := vft.DecodeChunk(rep.Chunks[0], rt.def.Schema)
			if err != nil {
				return err
			}
			seg := colstore.NewSegment(rt.def.Schema, 0)
			if err := seg.Append(b); err != nil {
				return err
			}
			segs[shard] = seg
			return nil
		})
		if err != nil {
			return nil, err
		}
		g.defs[name] = rt.def
		g.segs[name] = segs
	}
	return sqlexec.RunSelectCtx(ctx, g, sel)
}

// routeExplain forwards the EXPLAIN to the first healthy peer, restricted
// to that peer's shards, and prefixes the cluster fan-out header: the
// distributed plan is "route to every shard" above whatever per-shard plan
// the peer's planner picks.
func (r *Router) routeExplain(ctx context.Context, sql string) (*sqlexec.Result, error) {
	var rep explainReply
	var peerUsed int
	var lastErr error
	done := false
	for peer := range r.pools {
		if r.isDown(peer) {
			continue
		}
		shards := r.topo.OwnedShards(peer)
		if len(shards) == 0 {
			continue
		}
		err := r.peerCall(ctx, peer, opExplain, true, explainRequest{SQL: sql, Shards: shards}, &rep)
		if err == nil {
			peerUsed, done = peer, true
			break
		}
		lastErr = err
		if connFailure(err) {
			r.markDown(peer)
			continue
		}
		return nil, err
	}
	if !done {
		return nil, fmt.Errorf("cluster: explain: %w: %v", verr.ErrNodeDown, lastErr)
	}
	out := &colstore.Batch{
		Schema: colstore.Schema{{Name: "QUERY PLAN", Type: colstore.TypeString}},
		Cols:   []*colstore.Vector{colstore.NewVector(colstore.TypeString, 0)},
	}
	header := []string{
		fmt.Sprintf("Cluster Route  (shards=%d peers=%d replicas=%d)", r.topo.Shards, len(r.topo.Addrs), r.topo.Replicas),
		fmt.Sprintf("  per-shard plan from node %d (shards %v):", peerUsed, r.topo.OwnedShards(peerUsed)),
	}
	for _, line := range header {
		if err := out.Cols[0].AppendValue(line); err != nil {
			return nil, err
		}
	}
	for _, row := range rep.Rows {
		line := ""
		if len(row) > 0 {
			line = "  " + row[0]
		}
		if err := out.Cols[0].AppendValue(line); err != nil {
			return nil, err
		}
	}
	return &sqlexec.Result{Batch: out}, nil
}

// ---- Writes ----

// table resolves (and caches) a table's definition and splitter. The
// definition comes from any live peer — the catalog is broadcast-
// replicated, so all agree.
func (r *Router) table(ctx context.Context, name string) (*routedTable, error) {
	r.mu.Lock()
	rt := r.tables[name]
	r.mu.Unlock()
	if rt != nil {
		return rt, nil
	}
	var def *catalog.TableDef
	var lastErr error
	found := false
	for peer := range r.pools {
		if r.isDown(peer) {
			continue
		}
		var d catalog.TableDef
		err := r.peerCall(ctx, peer, opTableDef, true, tableDefRequest{Table: name}, &d)
		if err == nil {
			def, found = &d, true
			break
		}
		lastErr = err
		if connFailure(err) {
			r.markDown(peer)
			continue
		}
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("cluster: tabledef %q: %w: %v", name, verr.ErrNodeDown, lastErr)
	}
	split, err := catalog.NewSplitter(def.Seg, def.Schema, r.topo.Shards)
	if err != nil {
		return nil, err
	}
	rt = &routedTable{def: def, split: split}
	r.mu.Lock()
	if cached := r.tables[name]; cached != nil {
		rt = cached // lost a race; keep the first splitter (cursor state)
	} else {
		r.tables[name] = rt
	}
	r.mu.Unlock()
	return rt, nil
}

// Load splits a COPY batch by the table's segmentation — with the same
// stateful splitter the single-process engine uses, so row placement is
// identical — and writes each shard part to every replica. A replica that
// misses its write is marked stale; the load succeeds as long as every
// shard keeps at least one current replica.
func (r *Router) Load(ctx context.Context, table string, b *colstore.Batch) error {
	ctx, span := telemetry.StartChildCtx(ctx, "router.load")
	defer span.End()
	rt, err := r.table(ctx, table)
	if err != nil {
		return err
	}
	r.mu.Lock()
	parts, err := rt.split.SplitOwned(b)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	mRouterLoads.Add(int64(b.Len()))
	return r.fanOut(ctx, func(shard int) error {
		part := parts[shard]
		if part == nil || part.Len() == 0 {
			return nil
		}
		chunk, err := vft.EncodeChunk(part)
		if err != nil {
			return err
		}
		req := loadRequest{Table: table, Shard: shard, Chunk: chunk}
		owners := r.topo.Owners(shard)
		okCount := 0
		var lastErr error
		var wg sync.WaitGroup
		results := make([]error, len(owners))
		for i, peer := range owners {
			if r.isStale(peer, shard) {
				results[i] = fmt.Errorf("stale")
				continue
			}
			wg.Add(1)
			go func(i, peer int) {
				defer wg.Done()
				var rep loadReply
				results[i] = r.peerCall(ctx, peer, opLoad, false, req, &rep)
			}(i, peer)
		}
		wg.Wait()
		for _, err := range results {
			if err == nil {
				okCount++
			}
		}
		for i, peer := range owners {
			err := results[i]
			if err == nil || r.isStale(peer, shard) {
				continue
			}
			lastErr = err
			if connFailure(err) {
				r.markDown(peer)
			}
			if okCount == 0 {
				// No replica applied the batch — a canceled or failed-
				// everywhere load leaves the replicas mutually consistent.
				// The caller gets the error below; retiring every replica
				// here would brick the shard without any divergence.
				continue
			}
			// A sibling applied the write and this replica missed it (or
			// its outcome is unknown) — even ErrCanceled counts, since the
			// cancellation raced a sibling's success: reading this replica
			// could serve short results, so retire it.
			r.markStale(peer, shard)
		}
		if okCount == 0 {
			if lastErr != nil && errors.Is(lastErr, verr.ErrCanceled) {
				return fmt.Errorf("cluster: load shard %d of %q: %w", shard, table, lastErr)
			}
			if lastErr == nil {
				lastErr = fmt.Errorf("no usable replica")
			}
			return fmt.Errorf("cluster: load shard %d of %q: every replica failed: %w: %v",
				shard, table, verr.ErrNodeDown, lastErr)
		}
		return nil
	})
}

// routeInsert splits INSERT rows exactly like Load.
func (r *Router) routeInsert(ctx context.Context, ins *sqlparse.Insert) error {
	rt, err := r.table(ctx, ins.Table)
	if err != nil {
		return err
	}
	b, err := vertica.InsertBatch(rt.def, ins)
	if err != nil {
		return err
	}
	return r.Load(ctx, ins.Table, b)
}

// broadcastExec runs a DDL statement on every peer. DDL requires the whole
// cluster reachable — catalogs must not diverge — so any failure aborts
// with an error (peers already updated stay updated; re-issuing the DDL is
// the operator's recovery path, matching the idempotency of CREATE/DROP
// pairs).
func (r *Router) broadcastExec(ctx context.Context, sql string, stmt sqlparse.Statement) error {
	ctx, span := telemetry.StartChildCtx(ctx, "router.ddl")
	defer span.End()
	mRouterRouted("ddl").Inc()
	errs := make([]error, len(r.pools))
	var wg sync.WaitGroup
	for peer := range r.pools {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var rep execReply
			errs[peer] = r.peerCall(ctx, peer, opExec, false, execRequest{SQL: sql}, &rep)
		}(peer)
	}
	wg.Wait()
	// DDL invalidates cached definitions and splitters.
	r.mu.Lock()
	r.tables = map[string]*routedTable{}
	r.mu.Unlock()
	for peer, err := range errs {
		if err != nil && connFailure(err) {
			r.markDown(peer)
		}
	}
	return errors.Join(errs...)
}
