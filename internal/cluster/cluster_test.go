package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/server"
	"verticadr/internal/sqlexec"
	"verticadr/internal/verr"
)

func TestTopologyPlacement(t *testing.T) {
	topo, err := Topology{Addrs: []string{"a", "b", "c"}, Shards: 3, Replicas: 2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Ring placement: shard s on peers (s, s+1) mod 3, primary first.
	wantOwners := [][]int{{0, 1}, {1, 2}, {2, 0}}
	for s, want := range wantOwners {
		if got := topo.Owners(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("Owners(%d) = %v, want %v", s, got, want)
		}
	}
	wantShards := [][]int{{0, 2}, {0, 1}, {1, 2}}
	for node, want := range wantShards {
		if got := topo.OwnedShards(node); !reflect.DeepEqual(got, want) {
			t.Fatalf("OwnedShards(%d) = %v, want %v", node, got, want)
		}
	}
	if !topo.Owns(0, 2) || topo.Owns(0, 1) {
		t.Fatal("Owns disagrees with Owners")
	}

	// Defaults: shards = peers, replicas = 2 capped to peer count.
	one, err := Topology{Addrs: []string{"a"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if one.Shards != 1 || one.Replicas != 1 {
		t.Fatalf("single-peer defaults = %+v", one)
	}
	if _, err := (Topology{}).Normalize(); err == nil {
		t.Fatal("empty topology normalized")
	}
	if _, err := (Topology{Addrs: []string{"a"}, Replicas: 2}.Normalize()); err == nil {
		t.Fatal("replication factor above peer count normalized")
	}
}

func TestWireValueRoundTripExact(t *testing.T) {
	nanPayload := math.Float64frombits(0x7ff8deadbeef0001)
	vals := []any{
		nil, int64(-42), int64(0), "azul", "", true, false,
		0.0, math.Copysign(0, -1), 2.5, math.Inf(1), math.Inf(-1),
		math.NaN(), nanPayload,
	}
	for i, v := range vals {
		w, err := encodeValue(v)
		if err != nil {
			t.Fatalf("value %d (%#v): %v", i, v, err)
		}
		got, err := w.decode()
		if err != nil {
			t.Fatalf("value %d (%#v): %v", i, v, err)
		}
		if !bitIdentical(v, got) {
			t.Fatalf("value %d: %#v round-tripped to %#v", i, v, got)
		}
	}
	// The NaN payload itself must survive, not just NaN-ness.
	w, _ := encodeValue(nanPayload)
	got, _ := w.decode()
	if math.Float64bits(got.(float64)) != 0x7ff8deadbeef0001 {
		t.Fatalf("NaN payload lost: %x", math.Float64bits(got.(float64)))
	}
	if _, err := encodeValue(int32(1)); err == nil {
		t.Fatal("unboxable type encoded")
	}
}

func TestAggPartialRoundTrip(t *testing.T) {
	p := &sqlexec.AggPartial{
		OutTypes: []colstore.Type{colstore.TypeInt64, colstore.TypeFloat64},
		Groups: []sqlexec.AggPartialGroup{
			{
				Key:     "red\x00true",
				KeyVals: []any{"red", true},
				States: []*sqlexec.AggPartialState{
					nil, // group-column passthrough
					{Fn: "sum", Count: 7, Sum: 3.5, Min: math.Copysign(0, -1), Max: math.NaN()},
				},
			},
			{
				Key:     "blue\x00false",
				KeyVals: []any{"blue", false},
				States: []*sqlexec.AggPartialState{
					nil,
					{Fn: "count", Count: 0, Sum: 0, Min: nil, Max: nil},
				},
			},
		},
	}
	w, err := encodeAggPartial(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeAggPartial(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.OutTypes, p.OutTypes) {
		t.Fatalf("out types %v != %v", got.OutTypes, p.OutTypes)
	}
	if len(got.Groups) != len(p.Groups) {
		t.Fatalf("%d groups, want %d", len(got.Groups), len(p.Groups))
	}
	for gi := range p.Groups {
		pg, gg := p.Groups[gi], got.Groups[gi]
		if gg.Key != pg.Key {
			t.Fatalf("group %d key %q != %q (NUL separator must survive)", gi, gg.Key, pg.Key)
		}
		for vi := range pg.KeyVals {
			if !bitIdentical(pg.KeyVals[vi], gg.KeyVals[vi]) {
				t.Fatalf("group %d keyval %d: %#v != %#v", gi, vi, gg.KeyVals[vi], pg.KeyVals[vi])
			}
		}
		for si := range pg.States {
			ps, gs := pg.States[si], gg.States[si]
			if (ps == nil) != (gs == nil) {
				t.Fatalf("group %d state %d nil-ness differs", gi, si)
			}
			if ps == nil {
				continue
			}
			if gs.Fn != ps.Fn || gs.Count != ps.Count ||
				math.Float64bits(gs.Sum) != math.Float64bits(ps.Sum) ||
				!bitIdentical(ps.Min, gs.Min) || !bitIdentical(ps.Max, gs.Max) {
				t.Fatalf("group %d state %d: %+v != %+v", gi, si, gs, ps)
			}
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err   error
		retry bool
		conn  bool
	}{
		{verr.ErrNodeDown, true, true},
		{verr.ErrClosed, true, true},
		{verr.ErrOverloaded, true, false},
		{fmt.Errorf("wrap: %w", verr.ErrOverloaded), true, false},
		{verr.ErrCanceled, false, false},
		{fmt.Errorf("%w: %w", verr.ErrNodeDown, verr.ErrCanceled), false, true},
		{errors.New("syntax error"), false, false},
	}
	for i, c := range cases {
		if got := retryable(c.err); got != c.retry {
			t.Fatalf("case %d (%v): retryable = %v, want %v", i, c.err, got, c.retry)
		}
		if got := connFailure(c.err); got != c.conn {
			t.Fatalf("case %d (%v): connFailure = %v, want %v", i, c.err, got, c.conn)
		}
	}
}

// TestRouterFailoverOnReplicaDeath kills one peer of a replicated 2-node
// cluster and requires reads to keep answering from the survivor, the
// health view to record the death, and the prober to resurrect the peer
// when its listener returns.
func TestRouterFailoverOnReplicaDeath(t *testing.T) {
	tc := startCluster(t, 2, 2, 2)
	ctx := context.Background()
	tc.exec(fmt.Sprintf(testDDL, "t", "HASH(id)"))
	tc.exec(`INSERT INTO t VALUES (1, 2, 3, 1.5, 2.5, 'red', true), (2, 3, 4, -0.5, 0.5, 'blue', false)`)

	if err := tc.nodes[1].tcp.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := tc.router(0).Query(ctx, `SELECT count(*) AS n FROM t`)
	if err != nil {
		t.Fatalf("read did not fail over: %v", err)
	}
	if n := res.Rows()[0][0].(int64); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	if h := tc.router(0).Health(); h[1].Up {
		t.Fatal("dead peer still marked up")
	}

	tcp, err := server.Listen(tc.nodes[1].srv, tc.nodes[1].addr,
		server.WithFrontend(tc.nodes[1].router),
		server.WithExtension(NodeExtension(tc.nodes[1].peer, tc.nodes[1].router)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tcp.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := tc.router(0).Health(); h[1].Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never restored the peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterPrepareExecute binds a router-side prepared statement; no peer
// ever sees the unbound template.
func TestRouterPrepareExecute(t *testing.T) {
	tc := startCluster(t, 2, 2, 1)
	ctx := context.Background()
	tc.exec(fmt.Sprintf(testDDL, "t", "HASH(id)"))
	tc.exec(`INSERT INTO t VALUES (1, 5, 0, 1.0, 0.0, 'red', true), (2, -5, 0, 2.0, 0.0, 'blue', false), (3, 9, 0, 3.0, 0.0, 'red', true)`)

	r := tc.router(0)
	if err := r.Prepare("above", `SELECT id, a FROM t WHERE a > ? ORDER BY id`); err != nil {
		t.Fatal(err)
	}
	res, err := r.Execute(ctx, "above", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0].(int64) != 1 || rows[1][0].(int64) != 3 {
		t.Fatalf("execute rows = %v", rows)
	}
	if _, err := r.Execute(ctx, "missing"); err == nil {
		t.Fatal("execute of unknown statement succeeded")
	}
	if err := r.Prepare("", `SELECT 1`); err == nil {
		t.Fatal("empty statement name prepared")
	}
}

// TestProbeHealth exercises the client-facing health probe helper against
// one live and one dead address.
func TestProbeHealth(t *testing.T) {
	tc := startCluster(t, 1, 1, 1)
	dead := freeAddrs(t, 1)[0]
	hs := ProbeHealth(context.Background(), []string{tc.nodes[0].addr, dead}, time.Second)
	if len(hs) != 2 {
		t.Fatalf("%d reports, want 2", len(hs))
	}
	if !hs[0].Up {
		t.Fatalf("live node reported down: %+v", hs[0])
	}
	if hs[1].Up {
		t.Fatalf("dead address reported up: %+v", hs[1])
	}
}

// TestDiscoverHealth dials a single node of a 3-node cluster and must get
// a health report for all three, with per-node shard ownership, because
// the contacted peer reports the full address list. A dead seed address
// falls through to the next one.
func TestDiscoverHealth(t *testing.T) {
	tc := startCluster(t, 3, 3, 2)
	ctx := context.Background()
	dead := freeAddrs(t, 1)[0]
	for _, seeds := range [][]string{
		{tc.nodes[1].addr},
		{dead, tc.nodes[0].addr},
	} {
		hs := DiscoverHealth(ctx, seeds, time.Second)
		if len(hs) != 3 {
			t.Fatalf("seeds %v: %d reports, want 3", seeds, len(hs))
		}
		for i, h := range hs {
			if !h.Up || h.Addr != tc.nodes[i].addr {
				t.Fatalf("seeds %v: node %d report %+v", seeds, i, h)
			}
			if want := tc.topo.OwnedShards(i); !reflect.DeepEqual(h.Shards, want) {
				t.Fatalf("seeds %v: node %d shards %v, want %v", seeds, i, h.Shards, want)
			}
		}
	}
	// Nothing reachable: fall back to probing the seeds themselves.
	hs := DiscoverHealth(ctx, []string{dead}, 200*time.Millisecond)
	if len(hs) != 1 || hs[0].Up {
		t.Fatalf("dead-only discovery = %+v", hs)
	}
}
