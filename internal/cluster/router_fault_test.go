package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/server"
	"verticadr/internal/verr"
	"verticadr/internal/vft"
)

// Regression tests for the router's failure classification: which errors
// retire replicas, which preserve their identity across the shard fan-out,
// and how pooled connections behave across a peer restart.

func noStale(t *testing.T, r *Router, when string) {
	t.Helper()
	for _, h := range r.Health() {
		if len(h.Stale) != 0 {
			t.Fatalf("%s: node %d has stale shards %v, want none", when, h.Node, h.Stale)
		}
	}
}

func clusterCount(t *testing.T, r *Router, table string) int64 {
	t.Helper()
	res, err := r.Query(context.Background(), fmt.Sprintf(`SELECT count(*) AS n FROM %s`, table))
	if err != nil {
		t.Fatalf("count(%s): %v", table, err)
	}
	return res.Rows()[0][0].(int64)
}

func smallSchema() colstore.Schema {
	return colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
	}
}

func smallRows(n, from int) [][]any {
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(from + i), float64(i) / 4}
	}
	return rows
}

// A canceled COPY was never applied by any replica, so it must not retire
// them: the error keeps its ErrCanceled identity and the cluster keeps
// serving reads and writes on every shard.
func TestCanceledLoadDoesNotRetireReplicas(t *testing.T) {
	tc := startCluster(t, 3, 3, 2)
	tc.exec(`CREATE TABLE cx (id INTEGER, x FLOAT) SEGMENTED BY HASH(id)`)
	r := tc.router(0)
	ctx := context.Background()
	if err := r.Load(ctx, "cx", buildBatch(t, smallSchema(), smallRows(32, 0))); err != nil {
		t.Fatalf("seed load: %v", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	err := r.Load(canceled, "cx", buildBatch(t, smallSchema(), smallRows(32, 100)))
	if !errors.Is(err, verr.ErrCanceled) {
		t.Fatalf("canceled load error = %v, want ErrCanceled", err)
	}
	if errors.Is(err, verr.ErrNodeDown) {
		t.Fatalf("canceled load misclassified as node failure: %v", err)
	}
	noStale(t, r, "after canceled load")

	// The shards still serve both reads and writes from every node.
	if got := clusterCount(t, r, "cx"); got != 32 {
		t.Fatalf("count after canceled load = %v, want 32", got)
	}
	if err := r.Load(ctx, "cx", buildBatch(t, smallSchema(), smallRows(8, 200))); err != nil {
		t.Fatalf("load after canceled load: %v", err)
	}
	if got := clusterCount(t, tc.router(1), "cx"); got != 40 {
		t.Fatalf("final count = %v, want 40", got)
	}
}

// A COPY that fails on every replica (cluster fully unreachable) leaves the
// replicas mutually consistent: none may be retired, and after the nodes
// come back the shards must serve again — the bug was a permanent
// ErrNodeDown on every touched shard.
func TestLoadFailedEverywhereDoesNotRetireReplicas(t *testing.T) {
	tc := startCluster(t, 2, 2, 2)
	tc.exec(`CREATE TABLE fx (id INTEGER, x FLOAT) SEGMENTED BY HASH(id)`)
	r := tc.router(0)
	ctx := context.Background()
	if err := r.Load(ctx, "fx", buildBatch(t, smallSchema(), smallRows(16, 0))); err != nil {
		t.Fatalf("seed load: %v", err)
	}

	for _, n := range tc.nodes {
		_ = n.tcp.Close()
	}
	err := r.Load(ctx, "fx", buildBatch(t, smallSchema(), smallRows(16, 100)))
	if !errors.Is(err, verr.ErrNodeDown) {
		t.Fatalf("load with cluster down = %v, want ErrNodeDown", err)
	}
	noStale(t, r, "after failed-everywhere load")

	for _, n := range tc.nodes {
		tcp, err := server.Listen(n.srv, n.addr,
			server.WithFrontend(n.router),
			server.WithExtension(NodeExtension(n.peer, n.router)))
		if err != nil {
			t.Fatalf("restart %s: %v", n.addr, err)
		}
		n.tcp = tcp
		t.Cleanup(func() { _ = tcp.Close() })
	}
	// The prober (25ms interval) restores the peers; then every shard must
	// answer with the pre-outage contents.
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := r.Query(ctx, `SELECT count(*) AS n FROM fx`)
		if err == nil {
			if got := res.Rows()[0][0].(int64); got != 16 {
				t.Fatalf("count after recovery = %v, want 16", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	noStale(t, r, "after recovery")
}

// startSheddingPeer serves the wire protocol but answers every request with
// the overloaded code, simulating a peer whose admission control sheds.
func startSheddingPeer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var buf []byte
				for {
					frame, err := vft.ReadFrame(conn, buf)
					if err != nil {
						return
					}
					buf = frame
					resp, _ := json.Marshal(map[string]string{
						"code": verr.CodeOverloaded, "msg": "admission shed",
					})
					if vft.WriteFrame(conn, resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// When every replica of a shard sheds with ErrOverloaded, the router must
// surface ErrOverloaded — the documented back-off signal — not ErrNodeDown,
// which clients treat as a transport failure and answer with a cross-node
// retry storm.
func TestAllReplicasSheddingPreservesOverloaded(t *testing.T) {
	addrs := []string{startSheddingPeer(t), startSheddingPeer(t)}
	r, err := NewRouter(Config{Addrs: addrs, Shards: 2, Replicas: 2, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	_, err = r.Query(context.Background(), `SELECT count(*) AS n FROM t`)
	if !errors.Is(err, verr.ErrOverloaded) {
		t.Fatalf("all-replicas-shedding error = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, verr.ErrNodeDown) {
		t.Fatalf("shed misclassified as node failure: %v", err)
	}
	for _, h := range r.Health() {
		if !h.Up {
			t.Fatalf("shedding peer %d marked down: %+v", h.Node, h)
		}
	}
}

// A peer restart strands dead connections in the pool. The next call must
// absorb that — retry once over a fresh dial — instead of failing the query
// and marking the healthy peer down until the prober restores it.
func TestPooledConnSurvivesPeerRestart(t *testing.T) {
	tc := startCluster(t, 1, 2, 1)
	tc.exec(`CREATE TABLE px (id INTEGER, x FLOAT) SEGMENTED BY HASH(id)`)
	n := tc.nodes[0]
	r := n.router
	ctx := context.Background()
	if err := r.Load(ctx, "px", buildBatch(t, smallSchema(), smallRows(16, 0))); err != nil {
		t.Fatalf("seed load: %v", err)
	}
	if got := clusterCount(t, r, "px"); got != 16 {
		t.Fatalf("count = %v, want 16", got)
	}

	// Bounce the peer's listener: pooled connections are now dead, the
	// peer itself is immediately healthy again.
	_ = n.tcp.Close()
	tcp, err := server.Listen(n.srv, n.addr,
		server.WithFrontend(n.router),
		server.WithExtension(NodeExtension(n.peer, n.router)))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	n.tcp = tcp
	t.Cleanup(func() { _ = tcp.Close() })

	if got := clusterCount(t, r, "px"); got != 16 {
		t.Fatalf("count after restart = %v, want 16", got)
	}
	for _, h := range r.Health() {
		if !h.Up {
			t.Fatalf("restarted peer marked down: %+v", h)
		}
	}
}

// The idle pool is bounded and ages connections out.
func TestPoolCapAndTTL(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			_ = conn
		}
	}()
	p := &pool{addr: l.Addr().String(), dialTimeout: time.Second}
	for i := 0; i < poolMaxIdle+3; i++ {
		c, err := p.dial()
		if err != nil {
			t.Fatal(err)
		}
		p.put(c)
	}
	if got := len(p.idle); got != poolMaxIdle {
		t.Fatalf("idle after overfill = %d, want cap %d", got, poolMaxIdle)
	}
	c, pooled, err := p.get()
	if err != nil || !pooled {
		t.Fatalf("get from warm pool = (pooled=%v, err=%v), want pooled", pooled, err)
	}
	p.put(c)
	// Age every idle connection past the TTL: the next get must discard
	// them all and dial fresh.
	p.mu.Lock()
	for i := range p.idle {
		p.idle[i].since = time.Now().Add(-poolIdleTTL - time.Minute)
	}
	p.mu.Unlock()
	c, pooled, err = p.get()
	if err != nil || pooled {
		t.Fatalf("get over expired pool = (pooled=%v, err=%v), want fresh dial", pooled, err)
	}
	_ = c.Close()
	if got := len(p.idle); got != 0 {
		t.Fatalf("idle after TTL sweep = %d, want 0", got)
	}
	p.closeAll()
}
