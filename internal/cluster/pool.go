package cluster

import (
	"sync"
	"time"

	"verticadr/internal/server"
)

// Idle connections are bounded and aged out: a burst of concurrent calls
// must not leave a permanent pile of sockets, and a connection that sat
// idle long enough for the peer to have bounced is cheaper to re-dial than
// to fail a call with.
const (
	poolMaxIdle = 8
	poolIdleTTL = 30 * time.Second
)

// pool keeps idle protocol connections to one peer. Connections are
// checked out per call; a connection that saw a transport error is closed
// by the caller instead of returned, so the pool only ever holds
// connections whose last round trip succeeded.
type pool struct {
	addr        string
	dialTimeout time.Duration

	mu   sync.Mutex
	idle []pooledConn
}

type pooledConn struct {
	c     *server.Client
	since time.Time // when the connection went idle
}

// get returns an idle connection (pooled=true) or dials a new one.
// Connections idle past poolIdleTTL are discarded, newest first — put
// appends, so if the freshest is expired the rest are too. Dial failures
// carry verr.ErrNodeDown (see server.DialTimeout), which the router's
// failover classifies as retryable.
func (p *pool) get() (c *server.Client, pooled bool, err error) {
	cutoff := time.Now().Add(-poolIdleTTL)
	var expired []*server.Client
	p.mu.Lock()
	for c == nil && len(p.idle) > 0 {
		n := len(p.idle)
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		if pc.since.Before(cutoff) {
			expired = append(expired, pc.c)
			continue
		}
		c = pc.c
	}
	p.mu.Unlock()
	for _, e := range expired {
		_ = e.Close()
	}
	if c != nil {
		return c, true, nil
	}
	c, err = p.dial()
	return c, false, err
}

// dial opens a fresh connection, bypassing the idle list.
func (p *pool) dial() (*server.Client, error) {
	return server.DialTimeout(p.addr, p.dialTimeout)
}

// put returns a healthy connection for reuse (closed instead when the idle
// list is full).
func (p *pool) put(c *server.Client) {
	p.mu.Lock()
	if len(p.idle) >= poolMaxIdle {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	p.idle = append(p.idle, pooledConn{c: c, since: time.Now()})
	p.mu.Unlock()
}

// flush closes every idle connection: once one pooled connection to a peer
// turns out to be dead, its idle siblings almost certainly predate the
// same restart.
func (p *pool) flush() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, pc := range idle {
		_ = pc.c.Close()
	}
}

func (p *pool) closeAll() { p.flush() }
