package cluster

import (
	"sync"
	"time"

	"verticadr/internal/server"
)

// pool keeps idle protocol connections to one peer. Connections are
// checked out per call; a connection that saw a transport error is closed
// by the caller instead of returned, so the pool only ever holds
// connections whose last round trip succeeded.
type pool struct {
	addr        string
	dialTimeout time.Duration

	mu   sync.Mutex
	idle []*server.Client
}

// get returns an idle connection or dials a new one. Dial failures carry
// verr.ErrNodeDown (see server.DialTimeout), which the router's failover
// classifies as retryable.
func (p *pool) get() (*server.Client, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return server.DialTimeout(p.addr, p.dialTimeout)
}

// put returns a healthy connection for reuse.
func (p *pool) put(c *server.Client) {
	p.mu.Lock()
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

func (p *pool) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}
