package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"verticadr/internal/server"
	"verticadr/internal/sqlexec/difftest"
)

// The replica-kill chaos test: a 3-node cluster at replication factor 2
// loses one peer abruptly (listener and every connection torn down — the
// in-process kill -9) in the middle of an interleaved COPY + SELECT
// workload. The contract under test is the ISSUE's acceptance bar: zero
// failed queries across the kill, loads that keep succeeding on the
// surviving replicas, and a final state bitwise identical to a
// single-process session that received the same batches.
func TestClusterSurvivesReplicaKill(t *testing.T) {
	iters, batchRows := 30, 20
	if testing.Short() {
		iters = 12
	}
	tc := startCluster(t, 3, 3, 2)
	base := startBaseline(t, 3)
	ctx := context.Background()
	gen := difftest.NewGen(0xdead)
	schema := difftest.TableSchema()

	ddl := fmt.Sprintf(testDDL, "t", "HASH(id)")
	if err := base.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	tc.exec(ddl)

	fdb, err := gen.Table(iters * batchRows)
	if err != nil {
		t.Fatal(err)
	}
	rows := fdb.SrcRows

	probes := []string{
		`SELECT count(*) AS n, sum(x) AS sx FROM t`,
		`SELECT id, a, x, s FROM t WHERE a > 0 ORDER BY id LIMIT 25`,
	}
	victim := 2
	killAt := iters / 3
	for i := 0; i < iters; i++ {
		if i == killAt {
			// kill -9: the listener dies and every open connection drops;
			// in-flight shard writes to the victim have unknown outcomes.
			if err := tc.nodes[victim].tcp.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := tc.router(0).Load(ctx, "t", buildBatch(t, schema, rows[i*batchRows:(i+1)*batchRows])); err != nil {
			t.Fatalf("iter %d: routed load failed across kill: %v", i, err)
		}
		if err := base.Load("t", buildBatch(t, schema, rows[i*batchRows:(i+1)*batchRows])); err != nil {
			t.Fatal(err)
		}
		// Queries enter through both surviving initiators; none may fail.
		for qi, sql := range probes {
			got, err := tc.router(qi).Query(ctx, sql)
			if err != nil {
				t.Fatalf("iter %d: query %q failed across kill: %v", i, sql, err)
			}
			ref, err := base.QueryContext(ctx, sql)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("iter %d %q", i, sql), ref, got)
		}
	}

	// The loading router observed the missed writes: the victim must be
	// marked down with stale shard replicas recorded.
	health := tc.router(0).Health()
	if health[victim].Up {
		t.Fatalf("victim still marked up after kill: %+v", health[victim])
	}
	if len(health[victim].Stale) == 0 {
		t.Fatalf("victim has no stale shards after missed writes: %+v", health[victim])
	}

	// Restart the victim's listener on the same address (same session, same
	// router, same peer — the process came back). The prober must mark it
	// up again, and reads must stay byte-exact: the shards that missed
	// writes stay retired on the router that observed the misses.
	tcp, err := server.Listen(tc.nodes[victim].srv, tc.nodes[victim].addr,
		server.WithFrontend(tc.nodes[victim].router),
		server.WithExtension(NodeExtension(tc.nodes[victim].peer, tc.nodes[victim].router)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tcp.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := tc.router(0).Health(); h[victim].Up {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the restarted victim up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Post-recovery: loads keep skipping the stale replicas, reads keep
	// matching the baseline bitwise.
	finals := []string{
		`SELECT count(*) AS n, sum(x) AS sx, min(y) AS my, max(b) AS mb FROM t`,
		`SELECT a, count(*) AS n, sum(y) AS sy FROM t GROUP BY a ORDER BY a`,
		`SELECT * FROM t ORDER BY id`,
		`SELECT id, x FROM t WHERE flag ORDER BY x DESC, id LIMIT 40`,
	}
	for _, sql := range finals {
		ref, err := base.QueryContext(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.router(0).Query(ctx, sql)
		if err != nil {
			t.Fatalf("post-recovery query %q failed: %v", sql, err)
		}
		sameResult(t, "post-recovery "+sql, ref, got)
	}
}
