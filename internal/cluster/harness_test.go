package cluster

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"verticadr/internal/colstore"
	"verticadr/internal/core"
	"verticadr/internal/server"
	"verticadr/internal/sqlexec"
)

// The in-process cluster harness: N real vdr-serve shapes — session,
// serving layer, router frontend, peer extension — listening on loopback
// TCP, plus a single-process baseline session with the same node count,
// block size and parallelism. Tests drive identical DDL and identical COPY
// batch sequences into both and require bitwise-identical query results.

// testDDL matches difftest.TableSchema column for column.
const testDDL = `CREATE TABLE %s (id INTEGER, a INTEGER, b INTEGER, x FLOAT, y FLOAT, s VARCHAR, flag BOOLEAN) SEGMENTED BY %s`

// freeAddrs reserves n distinct loopback ports by binding and immediately
// releasing them. The tiny window before the harness rebinds is an
// accepted test-only race.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	lis := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range lis {
		_ = l.Close()
	}
	return addrs
}

// testNode is one cluster member: every node is an initiator (router in
// front of its own listener) and a shard server (peer extension behind it).
type testNode struct {
	sess   *core.Session
	srv    *server.Server
	router *Router
	peer   *Peer
	tcp    *server.TCPServer
	addr   string
}

type testCluster struct {
	t     *testing.T
	topo  Topology
	nodes []*testNode
}

// nodeConfig is the session shape every cluster member AND the baseline
// must share for bitwise comparability: the local database opens with one
// node per cluster shard, and block size / UDTF parallelism pin the chunk
// boundaries the executor folds over.
func nodeConfig(shards int) core.Config {
	return core.Config{DBNodes: shards, DRWorkers: 2, InstancesPerWorker: 1, BlockRows: 64}
}

// startCluster brings up peers nodes serving shards shards at replication
// factor replicas, each with its own router frontend.
func startCluster(t *testing.T, peers, shards, replicas int) *testCluster {
	t.Helper()
	addrs := freeAddrs(t, peers)
	topo, err := Topology{Addrs: addrs, Shards: shards, Replicas: replicas}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{t: t, topo: topo}
	for i := 0; i < peers; i++ {
		sess, err := core.Start(nodeConfig(topo.Shards))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sess.Close)
		srv := server.New(sess, server.Config{MaxConcurrent: 8, MaxQueue: 64})
		router, err := NewRouter(Config{
			Addrs:         addrs,
			Shards:        topo.Shards,
			Replicas:      topo.Replicas,
			ProbeInterval: 25 * time.Millisecond,
			DialTimeout:   2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(router.Close)
		peer := NewPeer(srv, topo, i)
		tcp, err := server.Listen(srv, addrs[i],
			server.WithFrontend(router),
			server.WithExtension(NodeExtension(peer, router)))
		if err != nil {
			t.Fatal(err)
		}
		n := &testNode{sess: sess, srv: srv, router: router, peer: peer, tcp: tcp, addr: addrs[i]}
		t.Cleanup(func() { _ = n.tcp.Close() })
		tc.nodes = append(tc.nodes, n)
	}
	return tc
}

// router picks a node's router — rotating the entry point across calls
// exercises "every node is an initiator".
func (tc *testCluster) router(i int) *Router { return tc.nodes[i%len(tc.nodes)].router }

func (tc *testCluster) exec(sql string) {
	tc.t.Helper()
	if _, err := tc.router(0).Query(context.Background(), sql); err != nil {
		tc.t.Fatalf("cluster exec %q: %v", sql, err)
	}
}

// startBaseline is the single-process reference: same node count as the
// cluster has shards, same block size and parallelism.
func startBaseline(t *testing.T, shards int) *core.Session {
	t.Helper()
	sess, err := core.Start(nodeConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return sess
}

// buildBatch boxes rows into a fresh batch. Each side of a comparison gets
// its own batch: loads consume them.
func buildBatch(t *testing.T, schema colstore.Schema, rows [][]any) *colstore.Batch {
	t.Helper()
	b := colstore.NewBatchCap(schema, len(rows))
	for _, r := range rows {
		if err := b.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// loadBoth drives one COPY batch into the baseline session and through the
// cluster router — identical rows, identical batch boundary.
func loadBoth(t *testing.T, base *core.Session, tc *testCluster, table string, schema colstore.Schema, rows [][]any) {
	t.Helper()
	if err := base.Load(table, buildBatch(t, schema, rows)); err != nil {
		t.Fatalf("baseline load: %v", err)
	}
	if err := tc.router(0).Load(context.Background(), table, buildBatch(t, schema, rows)); err != nil {
		t.Fatalf("routed load: %v", err)
	}
}

// sameResult compares two results bitwise: schema names/types, row count,
// and every value with floats by bit pattern (difftest discipline).
func sameResult(t *testing.T, label string, ref, got *sqlexec.Result) {
	t.Helper()
	rs, gs := ref.Schema(), got.Schema()
	if len(rs) != len(gs) {
		t.Fatalf("%s: schema width %d, reference %d", label, len(gs), len(rs))
	}
	for i := range rs {
		if rs[i].Name != gs[i].Name || rs[i].Type != gs[i].Type {
			t.Fatalf("%s: schema col %d is %s/%v, reference %s/%v",
				label, i, gs[i].Name, gs[i].Type, rs[i].Name, rs[i].Type)
		}
	}
	rr, gr := ref.Rows(), got.Rows()
	if len(rr) != len(gr) {
		t.Fatalf("%s: %d rows, reference %d", label, len(gr), len(rr))
	}
	for ri := range rr {
		for ci := range rr[ri] {
			if !bitIdentical(rr[ri][ci], gr[ri][ci]) {
				t.Fatalf("%s: row %d col %d is %#v, reference %#v",
					label, ri, ci, gr[ri][ci], rr[ri][ci])
			}
		}
	}
}

// bitIdentical compares boxed values exactly; floats by bit pattern.
func bitIdentical(a, b any) bool {
	af, aIsF := a.(float64)
	bf, bIsF := b.(float64)
	if aIsF || bIsF {
		return aIsF && bIsF && math.Float64bits(af) == math.Float64bits(bf)
	}
	return a == b
}
