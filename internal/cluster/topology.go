// Package cluster promotes the single-process N-node database model to N
// real vdr-serve processes: a deterministic shard topology with k-way
// replica placement, a peer-side protocol extension executing shard-local
// work, and a router that fans SELECT/PREDICT/COPY out over TCP and merges
// partial results deterministically (aggregates re-merged from partial
// states, ORDER BY k-way merged, UDTF output concatenated in shard order).
// It is the deployment shape of the paper's 24-node evaluation cluster:
// tables are hash- or round-robin-segmented across shards exactly as the
// in-process engine segments them across nodes, so a routed query is
// bitwise-comparable to the same query on one big node.
//
// Failure handling: every peer is health-probed; idempotent reads retry on
// the next replica when a peer is unreachable or sheds with
// verr.ErrOverloaded; writes go to every replica of a shard, and a replica
// that misses a write is never read again (no re-sync in this version —
// the failover contract is documented in DESIGN.md §14). Only when every
// replica of a shard is unusable does the router surface verr.ErrNodeDown.
package cluster

import "fmt"

// Topology is the deterministic shard map: Shards hash segments placed on
// len(Addrs) peers with Replicas-way replication on a ring. Shard s lives
// on peers (s+r) mod n for r in 0..Replicas-1, primary first — the same
// "neighboring node holds the buddy projection" placement the paper's
// k-safety design uses.
type Topology struct {
	// Addrs are the peer addresses; the index is the peer's node ID.
	Addrs []string
	// Shards is the number of table segments (>= 1). Every peer opens its
	// local database with this many nodes and owns the segments placed on
	// it; unowned segments stay empty.
	Shards int
	// Replicas is the replication factor (1 <= Replicas <= len(Addrs)).
	Replicas int
}

// Normalize fills defaults (Shards = number of peers, Replicas = 2 capped
// to the peer count) and validates the result.
func (t Topology) Normalize() (Topology, error) {
	n := len(t.Addrs)
	if n == 0 {
		return t, fmt.Errorf("cluster: topology needs at least one peer address")
	}
	if t.Shards == 0 {
		t.Shards = n
	}
	if t.Replicas == 0 {
		t.Replicas = 2
		if t.Replicas > n {
			t.Replicas = n
		}
	}
	if t.Shards < 1 {
		return t, fmt.Errorf("cluster: %d shards", t.Shards)
	}
	if t.Replicas < 1 || t.Replicas > n {
		return t, fmt.Errorf("cluster: replication factor %d with %d peers", t.Replicas, n)
	}
	return t, nil
}

// Owners returns the peers holding shard s, primary first, in ring order.
func (t Topology) Owners(s int) []int {
	owners := make([]int, t.Replicas)
	for r := range owners {
		owners[r] = (s + r) % len(t.Addrs)
	}
	return owners
}

// OwnedShards returns the shards peer node holds a replica of, ascending.
func (t Topology) OwnedShards(node int) []int {
	var shards []int
	for s := 0; s < t.Shards; s++ {
		for _, o := range t.Owners(s) {
			if o == node {
				shards = append(shards, s)
				break
			}
		}
	}
	return shards
}

// Owns reports whether peer node holds a replica of shard s.
func (t Topology) Owns(node, s int) bool {
	for _, o := range t.Owners(s) {
		if o == node {
			return true
		}
	}
	return false
}
