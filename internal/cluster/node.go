package cluster

import (
	"context"
	"encoding/json"
	"fmt"

	"verticadr/internal/server"
	"verticadr/internal/vft"
)

// nodeExt is the protocol extension a clustered vdr-serve registers: the
// two cluster roles of one node behind a single dispatch. Shard-level ops
// answer locally through the Peer; a front-door COPY — cl.load with Shard
// == -1, "ingest this batch as if COPY'd at this node" — routes through
// the Router instead, so rows land on their owning shards cluster-wide.
// On a plain (non-clustered) server the Peer alone serves the same op by
// loading through the local segmentation; the client cannot tell the
// difference, which is what makes one client API serve both shapes.
type nodeExt struct {
	peer   *Peer
	router *Router
}

// NodeExtension bundles a Peer and a Router into the extension handler of
// a clustered node.
func NodeExtension(p *Peer, r *Router) server.Extension { return &nodeExt{peer: p, router: r} }

func (n *nodeExt) ServeExt(ctx context.Context, op string, payload json.RawMessage) (any, error) {
	if op != opLoad {
		return n.peer.ServeExt(ctx, op, payload)
	}
	var req loadRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("cluster: bad %s request: %w", op, err)
	}
	mPeerOps(op).Inc()
	if req.Shard != -1 {
		return n.peer.serveLoad(ctx, req)
	}
	rt, err := n.router.table(ctx, req.Table)
	if err != nil {
		return nil, err
	}
	b, err := vft.DecodeChunk(req.Chunk, rt.def.Schema)
	if err != nil {
		return nil, err
	}
	if err := n.router.Load(ctx, req.Table, b); err != nil {
		return nil, err
	}
	return &loadReply{Rows: b.Len()}, nil
}
