package cluster

import (
	"fmt"
	"math"
	"strconv"

	"verticadr/internal/colstore"
	"verticadr/internal/sqlexec"
)

// The peer protocol rides the serving protocol's extension hook: one JSON
// request frame, one JSON response frame, over the same connection and
// framing (vft u32 frames) as ordinary queries, with errors carried as verr
// wire codes. Row data crosses as vft chunk encodings ([]byte fields,
// base64 inside the JSON envelope), so float bits — including NaN payloads
// JSON numbers cannot carry — survive the hop exactly. Scalar values in
// aggregate partials cross as typed wire values with hex float bits for
// the same reason.

// Extension op names.
const (
	opSelect   = "cl.select"
	opAgg      = "cl.agg"
	opExplain  = "cl.explain"
	opLoad     = "cl.load"
	opExec     = "cl.exec"
	opTableDef = "cl.tabledef"
	opHealth   = "cl.health"
)

// selectRequest asks a peer to run a SELECT over the listed shards, one
// restricted snapshot view per shard, returning each shard's finished rows.
type selectRequest struct {
	SQL    string `json:"sql"`
	Shards []int  `json:"shards"`
}

// selectReply carries per-shard result chunks plus the shared schema.
type selectReply struct {
	Cols   []string        `json:"cols"`
	Types  []colstore.Type `json:"types"`
	Chunks [][]byte        `json:"chunks"` // one vft chunk per requested shard
}

// aggRequest asks a peer for per-shard aggregate partials.
type aggRequest struct {
	SQL    string `json:"sql"`
	Shards []int  `json:"shards"`
}

type aggReply struct {
	Partials []wireAggPartial `json:"partials"` // one per requested shard
}

// loadRequest appends a pre-split batch to one shard's segment (COPY). A
// Shard of -1 loads through the peer's own segmentation instead (the
// single-node passthrough path).
type loadRequest struct {
	Table string `json:"table"`
	Shard int    `json:"shard"`
	Chunk []byte `json:"chunk"`
}

type loadReply struct {
	Rows int `json:"rows"`
}

// execRequest runs a broadcast statement (DDL) on the peer.
type execRequest struct {
	SQL string `json:"sql"`
}

type execReply struct{}

type tableDefRequest struct {
	Table string `json:"table"`
}

// explainRequest runs EXPLAIN over the peer's restricted shard view.
type explainRequest struct {
	SQL    string `json:"sql"`
	Shards []int  `json:"shards"`
}

type explainReply struct {
	Cols []string   `json:"cols"`
	Rows [][]string `json:"rows"`
}

// healthReply is a peer's self-report for the router's health surface. Peers
// carries the full cluster address list so a client dialed at one node can
// discover the rest (DiscoverHealth).
type healthReply struct {
	Node      int      `json:"node"`
	Shards    []int    `json:"shards"`
	Peers     []string `json:"peers,omitempty"`
	Epoch     uint64   `json:"epoch"`
	Inflight  int      `json:"inflight"`
	Queued    int      `json:"queued"`
	Saturated bool     `json:"saturated"`
}

// wireValue is one exactly-encoded scalar: integers and bools natively,
// floats as hex bit patterns, nil as type "n".
type wireValue struct {
	T string `json:"t"`
	I int64  `json:"i,omitempty"`
	F string `json:"f,omitempty"`
	S string `json:"s,omitempty"`
	B bool   `json:"b,omitempty"`
}

func encodeValue(v any) (wireValue, error) {
	switch x := v.(type) {
	case nil:
		return wireValue{T: "n"}, nil
	case int64:
		return wireValue{T: "i", I: x}, nil
	case float64:
		return wireValue{T: "f", F: strconv.FormatUint(math.Float64bits(x), 16)}, nil
	case string:
		return wireValue{T: "s", S: x}, nil
	case bool:
		return wireValue{T: "b", B: x}, nil
	}
	return wireValue{}, fmt.Errorf("cluster: unencodable value %T", v)
}

func (w wireValue) decode() (any, error) {
	switch w.T {
	case "n":
		return nil, nil
	case "i":
		return w.I, nil
	case "f":
		bits, err := strconv.ParseUint(w.F, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad float bits %q", w.F)
		}
		return math.Float64frombits(bits), nil
	case "s":
		return w.S, nil
	case "b":
		return w.B, nil
	}
	return nil, fmt.Errorf("cluster: unknown wire value type %q", w.T)
}

func encodeValues(vs []any) ([]wireValue, error) {
	out := make([]wireValue, len(vs))
	for i, v := range vs {
		w, err := encodeValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func decodeValues(ws []wireValue) ([]any, error) {
	out := make([]any, len(ws))
	for i, w := range ws {
		v, err := w.decode()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// wireAggState mirrors sqlexec.AggPartialState with exact encodings.
type wireAggState struct {
	Fn    string     `json:"fn"`
	Count int64      `json:"count"`
	Sum   string     `json:"sum"` // hex Float64bits
	Min   *wireValue `json:"min,omitempty"`
	Max   *wireValue `json:"max,omitempty"`
}

// wireAggGroup is one group: the rendered key (base64 via []byte — it
// embeds NUL separators), the key values, and per-item states (nil for
// group-column passthrough items).
type wireAggGroup struct {
	Key     []byte          `json:"key"`
	KeyVals []wireValue     `json:"key_vals,omitempty"`
	States  []*wireAggState `json:"states"`
}

type wireAggPartial struct {
	OutTypes []colstore.Type `json:"out_types"`
	Groups   []wireAggGroup  `json:"groups"`
}

func encodeAggPartial(p *sqlexec.AggPartial) (wireAggPartial, error) {
	out := wireAggPartial{OutTypes: p.OutTypes}
	for _, g := range p.Groups {
		kv, err := encodeValues(g.KeyVals)
		if err != nil {
			return out, err
		}
		wg := wireAggGroup{Key: []byte(g.Key), KeyVals: kv}
		for _, st := range g.States {
			if st == nil {
				wg.States = append(wg.States, nil)
				continue
			}
			ws := &wireAggState{
				Fn:    st.Fn,
				Count: st.Count,
				Sum:   strconv.FormatUint(math.Float64bits(st.Sum), 16),
			}
			if st.Min != nil {
				v, err := encodeValue(st.Min)
				if err != nil {
					return out, err
				}
				ws.Min = &v
			}
			if st.Max != nil {
				v, err := encodeValue(st.Max)
				if err != nil {
					return out, err
				}
				ws.Max = &v
			}
			wg.States = append(wg.States, ws)
		}
		out.Groups = append(out.Groups, wg)
	}
	return out, nil
}

func decodeAggPartial(w wireAggPartial) (*sqlexec.AggPartial, error) {
	out := &sqlexec.AggPartial{OutTypes: w.OutTypes}
	for _, wg := range w.Groups {
		kv, err := decodeValues(wg.KeyVals)
		if err != nil {
			return nil, err
		}
		g := sqlexec.AggPartialGroup{Key: string(wg.Key), KeyVals: kv}
		for _, ws := range wg.States {
			if ws == nil {
				g.States = append(g.States, nil)
				continue
			}
			bits, err := strconv.ParseUint(ws.Sum, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad sum bits %q", ws.Sum)
			}
			st := &sqlexec.AggPartialState{Fn: ws.Fn, Count: ws.Count, Sum: math.Float64frombits(bits)}
			if ws.Min != nil {
				if st.Min, err = ws.Min.decode(); err != nil {
					return nil, err
				}
			}
			if ws.Max != nil {
				if st.Max, err = ws.Max.decode(); err != nil {
					return nil, err
				}
			}
			g.States = append(g.States, st)
		}
		out.Groups = append(out.Groups, g)
	}
	return out, nil
}
