package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/core"
	"verticadr/internal/sqlexec/difftest"
)

// The routed difftest: the same generated query battery the single-process
// engine is pinned by, replayed against a 3-node TCP cluster and compared
// bitwise with a single-process session holding identical data. Shard
// reads cross real sockets as exact vft chunks, so any float bit the
// cluster path perturbs fails the comparison.

func clusterDiffCounts(t *testing.T) (nrows, nqueries int) {
	if testing.Short() {
		return 120, 20
	}
	return 240, 70
}

func TestClusterDifftestRoutedMatchesSingleNode(t *testing.T) {
	for _, seg := range []string{"HASH(id)", "ROUND ROBIN"} {
		seg := seg
		t.Run(strings.Fields(seg)[0], func(t *testing.T) {
			t.Parallel()
			nrows, nqueries := clusterDiffCounts(t)
			tc := startCluster(t, 3, 3, 2)
			base := startBaseline(t, 3)
			ctx := context.Background()

			gen := difftest.NewGen(0x5eed + int64(len(seg)))
			schema := difftest.TableSchema()
			ddl := fmt.Sprintf(testDDL, "t", seg)
			if err := base.Exec(ddl); err != nil {
				t.Fatal(err)
			}
			tc.exec(ddl)

			// Load in several batches so the round-robin splitter cursor has
			// to survive across COPY calls on both sides.
			fdb, err := gen.Table(nrows)
			if err != nil {
				t.Fatal(err)
			}
			rows := fdb.SrcRows
			for off := 0; off < len(rows); off += 77 {
				end := off + 77
				if end > len(rows) {
					end = len(rows)
				}
				loadBoth(t, base, tc, "t", schema, rows[off:end])
			}

			for q := 0; q < nqueries; q++ {
				sql := gen.Query(nrows).String()
				ref, refErr := base.QueryContext(ctx, sql)
				got, gotErr := tc.router(q).Query(ctx, sql)
				if (refErr != nil) != (gotErr != nil) {
					t.Fatalf("query %d %q: baseline err %v, routed err %v", q, sql, refErr, gotErr)
				}
				if refErr != nil {
					continue
				}
				sameResult(t, fmt.Sprintf("query %d %q", q, sql), ref, got)
			}
		})
	}
}

// TestClusterDifftestJoins drives the generated join battery through the
// router's gather fallback: whole tables fetched shard by shard, rebuilt as
// local segments in shard order, joined at the router. The join tables get
// the adversarial float palette (NaN, -0.0), so the vft transport's exact
// bits are load-bearing.
func TestClusterDifftestJoins(t *testing.T) {
	nqueries := 24
	lrows, rrows := 90, 70
	if testing.Short() {
		nqueries = 8
	}
	tc := startCluster(t, 3, 3, 2)
	base := startBaseline(t, 3)
	ctx := context.Background()
	gen := difftest.NewGen(0x10ad)
	schema := difftest.TableSchema()

	for _, name := range []string{"t", "u"} {
		ddl := fmt.Sprintf(testDDL, name, "HASH(id)")
		if err := base.Exec(ddl); err != nil {
			t.Fatal(err)
		}
		tc.exec(ddl)
		n := lrows
		if name == "u" {
			n = rrows
		}
		fdb, err := gen.JoinTable(name, n)
		if err != nil {
			t.Fatal(err)
		}
		loadBoth(t, base, tc, name, schema, fdb.SrcRows)
	}

	for q := 0; q < nqueries; q++ {
		sql := gen.JoinQuery(lrows, rrows).String()
		ref, refErr := base.QueryContext(ctx, sql)
		got, gotErr := tc.router(q).Query(ctx, sql)
		if (refErr != nil) != (gotErr != nil) {
			t.Fatalf("join %d %q: baseline err %v, routed err %v", q, sql, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		sameResult(t, fmt.Sprintf("join %d %q", q, sql), ref, got)
	}
}

// TestClusterPredictMatchesSingleNode deploys the same GLM on every peer
// and on the baseline, then compares routed PREDICT output — per-shard
// UDTF runs concatenated in shard order — bitwise with the single-process
// engine.
func TestClusterPredictMatchesSingleNode(t *testing.T) {
	tc := startCluster(t, 3, 3, 2)
	base := startBaseline(t, 3)
	ctx := context.Background()
	gen := difftest.NewGen(0x91ed)
	schema := difftest.TableSchema()

	ddl := fmt.Sprintf(testDDL, "t", "HASH(id)")
	if err := base.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	tc.exec(ddl)
	fdb, err := gen.Table(200)
	if err != nil {
		t.Fatal(err)
	}
	loadBoth(t, base, tc, "t", schema, fdb.SrcRows)

	model := &algos.GLMModel{
		Family:       algos.Gaussian,
		Coefficients: []float64{0.25, 1.5, -2.25},
		Converged:    true,
	}
	deploy := func(s *core.Session) {
		if err := s.DeployModel("m", "tester", "cluster difftest model", model); err != nil {
			t.Fatal(err)
		}
	}
	deploy(base)
	for _, n := range tc.nodes {
		deploy(n.sess)
	}

	for q, sql := range []string{
		`SELECT GlmPredict(x, y USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t`,
		`SELECT GlmPredict(x, y USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t WHERE a > 0`,
	} {
		ref, err := base.QueryContext(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.router(q).Query(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, sql, ref, got)
	}
}

// TestClusterInsertAndExplain covers the remaining routed statement kinds:
// INSERT splits like COPY, EXPLAIN routes to one peer under the cluster
// fan-out header.
func TestClusterInsertAndExplain(t *testing.T) {
	tc := startCluster(t, 3, 3, 2)
	base := startBaseline(t, 3)
	ctx := context.Background()

	ddl := fmt.Sprintf(testDDL, "t", "ROUND ROBIN")
	if err := base.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	tc.exec(ddl)

	ins := `INSERT INTO t VALUES (1, 2, 3, 1.5, -2.5, 'red', true), (2, -4, 5, 0.5, 7.5, 'blue', false)`
	if err := base.Exec(ins); err != nil {
		t.Fatal(err)
	}
	tc.exec(ins)

	sql := `SELECT id, a, x, s FROM t ORDER BY id`
	ref, err := base.QueryContext(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.router(1).Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, sql, ref, got)

	exp, err := tc.router(2).Query(ctx, `EXPLAIN SELECT count(*) FROM t WHERE a > 0`)
	if err != nil {
		t.Fatal(err)
	}
	rows := exp.Rows()
	if len(rows) < 3 {
		t.Fatalf("explain returned %d lines, want cluster header + plan", len(rows))
	}
	head := rows[0][0].(string)
	if !strings.Contains(head, "Cluster Route") || !strings.Contains(head, "shards=3") {
		t.Fatalf("explain header %q lacks cluster route annotation", head)
	}
	var planText strings.Builder
	for _, r := range rows {
		planText.WriteString(r[0].(string) + "\n")
	}
	if !strings.Contains(planText.String(), "Aggregate") {
		t.Fatalf("explain output lacks per-shard plan:\n%s", planText.String())
	}
}
