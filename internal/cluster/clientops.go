package cluster

import (
	"context"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/server"
	"verticadr/internal/vft"
)

// Client-side wrappers over the cl.* ops, for the unified verticadr.Client:
// they work identically against a plain vdr-serve (the Peer loads through
// the local segmentation) and a clustered one (the node routes the batch to
// its owning shards cluster-wide).

// ClientTableDef fetches a table's definition over an open connection.
func ClientTableDef(ctx context.Context, c *server.Client, table string) (*catalog.TableDef, error) {
	var def catalog.TableDef
	if err := c.Call(ctx, opTableDef, tableDefRequest{Table: table}, &def); err != nil {
		return nil, err
	}
	return &def, nil
}

// ClientLoad COPYs a batch through a connection's front door (cl.load with
// Shard == -1: "ingest as if COPY'd at this node"). The batch crosses as a
// vft chunk, so float bits survive exactly.
func ClientLoad(ctx context.Context, c *server.Client, table string, b *colstore.Batch) error {
	chunk, err := vft.EncodeChunk(b)
	if err != nil {
		return err
	}
	var rep loadReply
	return c.Call(ctx, opLoad, loadRequest{Table: table, Shard: -1, Chunk: chunk}, &rep)
}
