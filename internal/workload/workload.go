// Package workload generates the synthetic datasets used throughout the
// paper's evaluation: Gaussian point clouds around K planted centers (for
// K-means, §7.3), regression datasets built from known coefficients (§7.3.1
// "we synthetically generated datasets by creating vectors around coefficients
// that we expect to fit the data"), and logistic-regression datasets for the
// hpdglm workflow of Figure 3. All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// KmeansData is a generated clustering dataset with its planted ground truth.
type KmeansData struct {
	Points  [][]float64 // n rows × d features
	Centers [][]float64 // k planted centers
	Labels  []int       // planted assignment of each point
}

// GenKmeans generates n points in d dimensions around k planted centers with
// per-coordinate Gaussian noise stddev sigma. Centers are spread on a scaled
// hypercube so that clusters are well separated when sigma is small.
func GenKmeans(seed int64, n, d, k int, sigma float64) *KmeansData {
	if n <= 0 || d <= 0 || k <= 0 {
		panic(fmt.Sprintf("workload: invalid kmeans dims n=%d d=%d k=%d", n, d, k))
	}
	r := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for i := range centers {
		c := make([]float64, d)
		for j := range c {
			c[j] = (r.Float64()*2 - 1) * 10 * float64(k)
		}
		centers[i] = c
	}
	points := make([][]float64, n)
	labels := make([]int, n)
	for i := range points {
		ci := r.Intn(k)
		labels[i] = ci
		p := make([]float64, d)
		for j := range p {
			p[j] = centers[ci][j] + r.NormFloat64()*sigma
		}
		points[i] = p
	}
	return &KmeansData{Points: points, Centers: centers, Labels: labels}
}

// RegressionData is a generated linear/logistic dataset with planted
// coefficients (Beta[0] is the intercept).
type RegressionData struct {
	X    [][]float64 // n × d feature matrix (without intercept column)
	Y    []float64   // responses
	Beta []float64   // planted coefficients, len d+1 (intercept first)
}

// GenLinear generates y = β₀ + Σ βⱼ·xⱼ + ε with ε ~ N(0, noise²).
func GenLinear(seed int64, n, d int, noise float64) *RegressionData {
	r := rand.New(rand.NewSource(seed))
	beta := make([]float64, d+1)
	for i := range beta {
		beta[i] = (r.Float64()*2 - 1) * 5
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		v := beta[0]
		for j := 0; j < d; j++ {
			row[j] = r.NormFloat64()
			v += beta[j+1] * row[j]
		}
		x[i] = row
		y[i] = v + r.NormFloat64()*noise
	}
	return &RegressionData{X: x, Y: y, Beta: beta}
}

// GenLogistic generates binary responses with P(y=1) = logistic(β₀ + Σ βⱼxⱼ).
func GenLogistic(seed int64, n, d int) *RegressionData {
	r := rand.New(rand.NewSource(seed))
	beta := make([]float64, d+1)
	for i := range beta {
		beta[i] = (r.Float64()*2 - 1) * 2
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		eta := beta[0]
		for j := 0; j < d; j++ {
			row[j] = r.NormFloat64()
			eta += beta[j+1] * row[j]
		}
		x[i] = row
		p := 1 / (1 + math.Exp(-eta))
		if r.Float64() < p {
			y[i] = 1
		}
	}
	return &RegressionData{X: x, Y: y, Beta: beta}
}

// TableSpec describes a synthetic relational table to materialize into the
// database: named float64 feature columns plus an optional response column.
type TableSpec struct {
	Name     string
	FeatCols []string
	RespCol  string // empty for none
	Rows     int
	Seed     int64
}

// Gen returns the column-oriented data for the spec: features drawn from
// N(0,1) and, when RespCol is set, a linear response over the features using
// coefficients derived from the seed. Returned in column order
// FeatCols..., RespCol.
func (ts TableSpec) Gen() (cols [][]float64, names []string, beta []float64) {
	r := rand.New(rand.NewSource(ts.Seed))
	d := len(ts.FeatCols)
	beta = make([]float64, d+1)
	for i := range beta {
		beta[i] = (r.Float64()*2 - 1) * 3
	}
	cols = make([][]float64, 0, d+1)
	names = append(names, ts.FeatCols...)
	for j := 0; j < d; j++ {
		cols = append(cols, make([]float64, ts.Rows))
	}
	var resp []float64
	if ts.RespCol != "" {
		resp = make([]float64, ts.Rows)
		names = append(names, ts.RespCol)
	}
	for i := 0; i < ts.Rows; i++ {
		v := beta[0]
		for j := 0; j < d; j++ {
			x := r.NormFloat64()
			cols[j][i] = x
			v += beta[j+1] * x
		}
		if resp != nil {
			resp[i] = v + r.NormFloat64()*0.1
		}
	}
	if resp != nil {
		cols = append(cols, resp)
	}
	return cols, names, beta
}

// SkewedSizes splits n rows across parts partitions with a geometric skew
// factor (factor 1 = even). Used to model skewed Vertica segmentation (§3.2):
// partition i receives weight factorⁱ. The returned sizes sum to exactly n.
func SkewedSizes(n, parts int, factor float64) []int {
	if parts <= 0 {
		panic("workload: parts must be positive")
	}
	if factor <= 0 {
		panic("workload: skew factor must be positive")
	}
	weights := make([]float64, parts)
	var total float64
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w *= factor
	}
	sizes := make([]int, parts)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(n) * weights[i] / total)
		assigned += sizes[i]
	}
	// Distribute the remainder deterministically to the largest partitions.
	for i := parts - 1; assigned < n; i = (i + parts - 1) % parts {
		sizes[i]++
		assigned++
	}
	return sizes
}
