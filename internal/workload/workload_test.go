package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenKmeansShape(t *testing.T) {
	d := GenKmeans(1, 100, 5, 3, 0.1)
	if len(d.Points) != 100 || len(d.Points[0]) != 5 {
		t.Fatalf("points shape %dx%d", len(d.Points), len(d.Points[0]))
	}
	if len(d.Centers) != 3 || len(d.Labels) != 100 {
		t.Fatalf("centers=%d labels=%d", len(d.Centers), len(d.Labels))
	}
	for _, l := range d.Labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label out of range: %d", l)
		}
	}
}

func TestGenKmeansDeterministic(t *testing.T) {
	a := GenKmeans(42, 50, 4, 2, 0.5)
	b := GenKmeans(42, 50, 4, 2, 0.5)
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed must produce identical data")
			}
		}
	}
	c := GenKmeans(43, 50, 4, 2, 0.5)
	same := true
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != c.Points[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenKmeansPointsNearCenters(t *testing.T) {
	d := GenKmeans(7, 200, 3, 4, 0.01)
	for i, p := range d.Points {
		c := d.Centers[d.Labels[i]]
		var dist float64
		for j := range p {
			dist += (p[j] - c[j]) * (p[j] - c[j])
		}
		if math.Sqrt(dist) > 1 {
			t.Fatalf("point %d far from its planted center: %v", i, math.Sqrt(dist))
		}
	}
}

func TestGenLinearRecoverable(t *testing.T) {
	d := GenLinear(9, 5000, 3, 0.01)
	if len(d.X) != 5000 || len(d.Y) != 5000 || len(d.Beta) != 4 {
		t.Fatalf("shapes %d %d %d", len(d.X), len(d.Y), len(d.Beta))
	}
	// With tiny noise, y should be very close to the planted linear form.
	for i := 0; i < 100; i++ {
		v := d.Beta[0]
		for j := 0; j < 3; j++ {
			v += d.Beta[j+1] * d.X[i][j]
		}
		if math.Abs(v-d.Y[i]) > 0.1 {
			t.Fatalf("row %d residual %v too large", i, v-d.Y[i])
		}
	}
}

func TestGenLogisticBalanced(t *testing.T) {
	d := GenLogistic(3, 10000, 4)
	var ones float64
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			t.Fatalf("non-binary response %v", y)
		}
		ones += y
	}
	frac := ones / float64(len(d.Y))
	if frac < 0.05 || frac > 0.95 {
		t.Fatalf("degenerate class balance %v", frac)
	}
}

func TestTableSpecGen(t *testing.T) {
	ts := TableSpec{Name: "t", FeatCols: []string{"a", "b"}, RespCol: "y", Rows: 100, Seed: 5}
	cols, names, beta := ts.Gen()
	if len(cols) != 3 || len(names) != 3 || len(beta) != 3 {
		t.Fatalf("gen shapes cols=%d names=%d beta=%d", len(cols), len(names), len(beta))
	}
	if names[2] != "y" {
		t.Fatalf("names = %v", names)
	}
	for _, c := range cols {
		if len(c) != 100 {
			t.Fatalf("column length %d", len(c))
		}
	}
	// No response column requested.
	ts2 := TableSpec{Name: "t2", FeatCols: []string{"a"}, Rows: 10, Seed: 5}
	cols2, names2, _ := ts2.Gen()
	if len(cols2) != 1 || len(names2) != 1 {
		t.Fatalf("gen without resp: cols=%d names=%d", len(cols2), len(names2))
	}
}

func TestSkewedSizesEven(t *testing.T) {
	s := SkewedSizes(100, 4, 1.0)
	for _, v := range s {
		if v != 25 {
			t.Fatalf("even split gave %v", s)
		}
	}
}

func TestSkewedSizesSkew(t *testing.T) {
	s := SkewedSizes(1000, 4, 2.0)
	sum := 0
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("skew should be nondecreasing: %v", s)
		}
	}
	for _, v := range s {
		sum += v
	}
	if sum != 1000 {
		t.Fatalf("sizes sum to %d, want 1000", sum)
	}
	if s[3] < 3*s[0] {
		t.Fatalf("expected strong skew, got %v", s)
	}
}

// Property: SkewedSizes always sums to n with nonnegative parts.
func TestQuickSkewedSizesSum(t *testing.T) {
	f := func(n uint16, parts uint8, factorRaw uint8) bool {
		p := int(parts%16) + 1
		factor := 0.5 + float64(factorRaw)/64.0
		sizes := SkewedSizes(int(n), p, factor)
		sum := 0
		for _, s := range sizes {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == int(n) && len(sizes) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
