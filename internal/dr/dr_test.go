package dr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"verticadr/internal/faults"
)

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Workers: 0}); err == nil {
		t.Fatal("0 workers should fail")
	}
	c, err := Start(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if c.NumWorkers() != 3 {
		t.Fatalf("workers = %d", c.NumWorkers())
	}
	if c.InstancesPerWorker() != 4 {
		t.Fatalf("default instances = %d", c.InstancesPerWorker())
	}
	if _, err := c.Worker(5); err == nil {
		t.Fatal("bad worker id should fail")
	}
}

func TestWorkerStore(t *testing.T) {
	c, _ := Start(Config{Workers: 2})
	defer c.Shutdown()
	w, _ := c.Worker(0)
	w.Put("a", 1)
	w.Put("b", 2)
	if v, ok := w.Get("a"); !ok || v != 1 {
		t.Fatalf("get = %v %v", v, ok)
	}
	if _, ok := w.Get("zz"); ok {
		t.Fatal("missing key should not be found")
	}
	if keys := w.Keys(); len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("keys = %v", keys)
	}
	w.Delete("a")
	if _, ok := w.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestRunExecutesOnWorker(t *testing.T) {
	c, _ := Start(Config{Workers: 2})
	defer c.Shutdown()
	err := c.Run(1, func(w *Worker) error {
		if w.ID() != 1 {
			t.Errorf("ran on worker %d", w.ID())
		}
		w.Put("x", "y")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := c.Worker(1)
	if v, _ := w.Get("x"); v != "y" {
		t.Fatal("task effect not visible")
	}
	if err := c.Run(9, func(*Worker) error { return nil }); err == nil {
		t.Fatal("bad worker should fail")
	}
}

func TestRunPropagatesError(t *testing.T) {
	c, _ := Start(Config{Workers: 1})
	defer c.Shutdown()
	want := errors.New("boom")
	if err := c.Run(0, func(*Worker) error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunAllParallelAcrossWorkers(t *testing.T) {
	c, _ := Start(Config{Workers: 4, InstancesPerWorker: 1})
	defer c.Shutdown()
	var count atomic.Int32
	tasks := map[int][]Task{}
	for w := 0; w < 4; w++ {
		for k := 0; k < 3; k++ {
			tasks[w] = append(tasks[w], func(*Worker) error {
				count.Add(1)
				return nil
			})
		}
	}
	if err := c.RunAll(tasks); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 12 {
		t.Fatalf("ran %d tasks", count.Load())
	}
}

func TestRunAllBoundsPerWorkerConcurrency(t *testing.T) {
	c, _ := Start(Config{Workers: 1, InstancesPerWorker: 2})
	defer c.Shutdown()
	var cur, peak atomic.Int32
	var mu sync.Mutex
	tasks := map[int][]Task{0: {}}
	for i := 0; i < 8; i++ {
		tasks[0] = append(tasks[0], func(*Worker) error {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := c.RunAll(tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds instance bound 2", p)
	}
}

func TestRunAllFirstError(t *testing.T) {
	c, _ := Start(Config{Workers: 2})
	defer c.Shutdown()
	boom := errors.New("boom")
	tasks := map[int][]Task{
		0: {func(*Worker) error { return nil }, func(*Worker) error { return boom }},
		1: {func(*Worker) error { return nil }},
	}
	if err := c.RunAll(tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Bad worker id in the map fails fast.
	if err := c.RunAll(map[int][]Task{7: {func(*Worker) error { return nil }}}); err == nil {
		t.Fatal("bad worker id should fail")
	}
}

func TestShutdownRejectsNewWork(t *testing.T) {
	c, _ := Start(Config{Workers: 1})
	c.Shutdown()
	c.Shutdown() // idempotent
	if err := c.Run(0, func(*Worker) error { return nil }); err == nil {
		t.Fatal("run after shutdown should fail")
	}
}

// TestShutdownRejectsQueuedWork pins the shutdown race fix: a task that
// passed submit's fast liveness check but is still waiting for an executor
// slot must be rejected — never run — once Shutdown lands.
func TestShutdownRejectsQueuedWork(t *testing.T) {
	c, _ := Start(Config{Workers: 1, InstancesPerWorker: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan error, 1)
	go func() {
		firstDone <- c.Run(0, func(*Worker) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started

	// Second task occupies the queue behind the held slot.
	var ran atomic.Bool
	secondDone := make(chan error, 1)
	go func() {
		secondDone <- c.Run(0, func(*Worker) error {
			ran.Store(true)
			return nil
		})
	}()
	// Let the second submission pass the fast check and block on the slot.
	time.Sleep(10 * time.Millisecond)
	c.Shutdown()
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("running task interrupted: %v", err)
	}
	if err := <-secondDone; err == nil {
		t.Fatal("queued task should be rejected after shutdown")
	}
	if ran.Load() {
		t.Fatal("queued task ran after shutdown")
	}
}

func TestFailWorkerRejectsAndFailsOver(t *testing.T) {
	c, _ := Start(Config{Workers: 3})
	defer c.Shutdown()
	if err := c.FailWorker(1); err != nil {
		t.Fatal(err)
	}
	if err := c.FailWorker(1); err != nil {
		t.Fatal("FailWorker should be idempotent")
	}
	if alive := c.Alive(); len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("alive = %v", alive)
	}
	if err := c.Run(1, func(*Worker) error { return nil }); !errors.Is(err, ErrWorkerDead) {
		t.Fatalf("run on dead worker = %v", err)
	}

	// RunAllSpecs moves the dead worker's task to a survivor, calling the
	// rebuild hook with the replacement first.
	var rebuiltOn, ranOn atomic.Int32
	rebuiltOn.Store(-1)
	ranOn.Store(-1)
	specs := map[int][]TaskSpec{
		1: {{
			Run: func(w *Worker) error {
				ranOn.Store(int32(w.ID()))
				return nil
			},
			Rebuild: func(w *Worker) error {
				rebuiltOn.Store(int32(w.ID()))
				return nil
			},
		}},
	}
	if err := c.RunAllSpecs(specs, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if rebuiltOn.Load() != 2 || ranOn.Load() != 2 {
		t.Fatalf("failover went to rebuild=%d run=%d, want worker 2", rebuiltOn.Load(), ranOn.Load())
	}
}

func TestRunAllRetriesTransientErrors(t *testing.T) {
	c, _ := Start(Config{Workers: 1, TaskRetries: 3})
	defer c.Shutdown()
	var tries atomic.Int32
	tasks := map[int][]Task{0: {func(*Worker) error {
		if tries.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}}}
	if err := c.RunAll(tasks); err != nil {
		t.Fatal(err)
	}
	if tries.Load() != 3 {
		t.Fatalf("task tried %d times, want 3", tries.Load())
	}

	// The cap is real: a task that always fails exhausts its retries.
	tries.Store(0)
	err := c.RunAll(map[int][]Task{0: {func(*Worker) error {
		tries.Add(1)
		return errors.New("permanent")
	}}})
	if err == nil {
		t.Fatal("permanently failing task should error")
	}
	if tries.Load() != 4 { // 1 initial + 3 retries
		t.Fatalf("task tried %d times, want 4", tries.Load())
	}
}

func TestInjectedCrashKillsWorker(t *testing.T) {
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: faults.SiteDRTask, Kind: faults.Crash, EveryN: 1, Limit: 1})
	faults.Install(in)
	defer faults.Install(nil)

	c, _ := Start(Config{Workers: 2})
	defer c.Shutdown()
	var ranOn atomic.Int32
	ranOn.Store(-1)
	err := c.RunAllSpecs(map[int][]TaskSpec{0: {{Run: func(w *Worker) error {
		ranOn.Store(int32(w.ID()))
		return nil
	}}}}, RunOpts{})
	if err != nil {
		t.Fatalf("crash should be recovered: %v", err)
	}
	w0, _ := c.Worker(0)
	if !w0.Dead() {
		t.Fatal("crashed worker not marked dead")
	}
	if ranOn.Load() != 1 {
		t.Fatalf("task ran on %d, want failover to worker 1", ranOn.Load())
	}
}

func TestNoSurvivorsErrors(t *testing.T) {
	c, _ := Start(Config{Workers: 1})
	defer c.Shutdown()
	if err := c.FailWorker(0); err != nil {
		t.Fatal(err)
	}
	err := c.RunAll(map[int][]Task{0: {func(*Worker) error { return nil }}})
	if !errors.Is(err, ErrWorkerDead) {
		t.Fatalf("err = %v, want ErrWorkerDead", err)
	}
	if err := c.FailWorker(5); err == nil {
		t.Fatal("failing an unknown worker should error")
	}
}

func TestGenNameUnique(t *testing.T) {
	c, _ := Start(Config{Workers: 1})
	defer c.Shutdown()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := c.GenName("obj")
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestGenNameConcurrent(t *testing.T) {
	c, _ := Start(Config{Workers: 1})
	defer c.Shutdown()
	var wg sync.WaitGroup
	names := make(chan string, 200)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				names <- c.GenName("x")
			}
		}()
	}
	wg.Wait()
	close(names)
	seen := map[string]bool{}
	for n := range names {
		if seen[n] {
			t.Fatalf("duplicate concurrent name %q", n)
		}
		seen[n] = true
	}
}
