// Package dr implements the Distributed R substitute: a master/worker
// runtime with per-worker in-memory partition stores and a bounded task
// executor per worker (the paper's "R instances per node"). Distributed
// data structures (internal/darray) and the parallel ML algorithms
// (internal/algos) run on top of this substrate; the transfer paths
// (internal/odbc, internal/vft) deliver data into worker stores.
//
// The paper's Distributed R runs workers as separate OS processes across
// machines; here workers are in-process with their own stores and bounded
// executors, which preserves the scheduling and data-placement behaviour
// while remaining runnable on one machine.
package dr

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"verticadr/internal/telemetry"
)

// Task-scheduling observability: how much work the runtime dispatched, how
// long tasks waited for an executor slot vs. ran, and the current in-flight
// count across all workers.
var (
	mTasks = func(state string) *telemetry.Counter {
		return telemetry.Default().Counter("dr_tasks_total", telemetry.L("state", state))
	}
	mWaitNs = telemetry.Default().Counter("dr_task_wait_nanos_total")
	mRunNs  = telemetry.Default().Counter("dr_task_run_nanos_total")
	gActive = telemetry.Default().Gauge("dr_tasks_active")
)

// Config configures a Distributed R session.
type Config struct {
	// Workers is the number of worker nodes (>= 1).
	Workers int
	// InstancesPerWorker bounds concurrent tasks per worker — the number of
	// R instances started on each node (default 4; the paper uses 24).
	InstancesPerWorker int
}

// Cluster is a running Distributed R session: one master plus workers.
type Cluster struct {
	cfg     Config
	workers []*Worker
	nextID  atomic.Uint64
	closed  atomic.Bool
}

// Start launches a session.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("dr: need at least 1 worker")
	}
	if cfg.InstancesPerWorker <= 0 {
		cfg.InstancesPerWorker = 4
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c.workers = append(c.workers, newWorker(i, cfg.InstancesPerWorker))
	}
	return c, nil
}

// Shutdown stops the session; subsequent task submissions fail.
func (c *Cluster) Shutdown() {
	if c.closed.Swap(true) {
		return
	}
	for _, w := range c.workers {
		w.close()
	}
}

// NumWorkers returns the worker count.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// InstancesPerWorker returns the per-worker executor width.
func (c *Cluster) InstancesPerWorker() int { return c.cfg.InstancesPerWorker }

// Worker returns worker i.
func (c *Cluster) Worker(i int) (*Worker, error) {
	if i < 0 || i >= len(c.workers) {
		return nil, fmt.Errorf("dr: no worker %d", i)
	}
	return c.workers[i], nil
}

// GenName allocates a cluster-unique object name (the master's symbol table
// namespace for distributed objects).
func (c *Cluster) GenName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, c.nextID.Add(1))
}

// Task is a unit of work executed on a worker, with access to that worker's
// partition store.
type Task func(w *Worker) error

// Run submits one task to worker i and waits for it.
func (c *Cluster) Run(i int, t Task) error {
	w, err := c.Worker(i)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	if err := w.submit(func() { errCh <- t(w) }); err != nil {
		return err
	}
	return <-errCh
}

// RunAll executes, for each worker, a list of tasks. Tasks assigned to the
// same worker share that worker's bounded executor (at most
// InstancesPerWorker run concurrently); different workers run fully in
// parallel. The first error aborts the wait and is returned.
func (c *Cluster) RunAll(tasks map[int][]Task) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for wid, list := range tasks {
		w, err := c.Worker(wid)
		if err != nil {
			return err
		}
		for _, t := range list {
			wg.Add(1)
			t := t
			if err := w.submit(func() {
				defer wg.Done()
				record(t(w))
			}); err != nil {
				wg.Done()
				record(err)
			}
		}
	}
	wg.Wait()
	return firstErr
}

// Worker is one Distributed R worker node: an in-memory partition store
// (the paper stages incoming data in /dev/shm) plus a bounded executor.
type Worker struct {
	id    int
	sem   chan struct{}
	mu    sync.RWMutex
	store map[string]any
	done  chan struct{}
	once  sync.Once
}

func newWorker(id, instances int) *Worker {
	return &Worker{
		id:    id,
		sem:   make(chan struct{}, instances),
		store: make(map[string]any),
		done:  make(chan struct{}),
	}
}

// ID returns the worker's node id.
func (w *Worker) ID() int { return w.id }

func (w *Worker) close() { w.once.Do(func() { close(w.done) }) }

// submit schedules fn respecting the instance bound.
func (w *Worker) submit(fn func()) error {
	select {
	case <-w.done:
		mTasks("rejected").Inc()
		return fmt.Errorf("dr: worker %d is shut down", w.id)
	default:
	}
	mTasks("submitted").Inc()
	queued := telemetry.Default().Now()
	go func() {
		w.sem <- struct{}{}
		defer func() { <-w.sem }()
		start := telemetry.Default().Now()
		mWaitNs.AddDuration(start - queued)
		gActive.Add(1)
		defer func() {
			gActive.Add(-1)
			mRunNs.AddDuration(telemetry.Default().Now() - start)
			mTasks("run").Inc()
		}()
		fn()
	}()
	return nil
}

// Put stores a partition value under key.
func (w *Worker) Put(key string, v any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.store[key] = v
}

// Get fetches a partition value.
func (w *Worker) Get(key string) (any, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	v, ok := w.store[key]
	return v, ok
}

// Delete removes a partition value.
func (w *Worker) Delete(key string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.store, key)
}

// Keys lists stored keys, sorted (diagnostics and tests).
func (w *Worker) Keys() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.store))
	for k := range w.store {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
