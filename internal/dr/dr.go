// Package dr implements the Distributed R substitute: a master/worker
// runtime with per-worker in-memory partition stores and a bounded task
// executor per worker (the paper's "R instances per node"). Distributed
// data structures (internal/darray) and the parallel ML algorithms
// (internal/algos) run on top of this substrate; the transfer paths
// (internal/odbc, internal/vft) deliver data into worker stores.
//
// The paper's Distributed R runs workers as separate OS processes across
// machines; here workers are in-process with their own stores and bounded
// executors, which preserves the scheduling and data-placement behaviour
// while remaining runnable on one machine.
//
// Failure handling mirrors Distributed R's "re-execute failed tasks on
// surviving workers": FailWorker (or an injected faults.ErrCrash from a
// running task) marks a worker's executor dead, after which queued and new
// submissions are rejected with ErrWorkerDead and RunAllSpecs re-targets the
// dead worker's tasks to survivors, invoking each task's Rebuild hook so the
// caller can re-fetch lost partitions first. Non-fatal task errors are
// retried in place up to a configurable cap.
package dr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

// Task-scheduling observability: how much work the runtime dispatched, how
// long tasks waited for an executor slot vs. ran, the current in-flight
// count, and the recovery activity (retries, failovers, dead workers).
var (
	// Each state label resolved once: task submission/dispatch is a hot
	// path and registry lookups format the series key per call.
	mTasksSubmitted = telemetry.Default().Counter("dr_tasks_total", telemetry.L("state", "submitted"))
	mTasksRun       = telemetry.Default().Counter("dr_tasks_total", telemetry.L("state", "run"))
	mTasksRejected  = telemetry.Default().Counter("dr_tasks_total", telemetry.L("state", "rejected"))
	mWaitNs         = telemetry.Default().Counter("dr_task_wait_nanos_total")
	mRunNs          = telemetry.Default().Counter("dr_task_run_nanos_total")
	gActive         = telemetry.Default().Gauge("dr_tasks_active")
	mRetries        = telemetry.Default().Counter("dr_task_retries_total")
	mFailovers      = telemetry.Default().Counter("dr_task_failovers_total")
	mWorkerFailures = telemetry.Default().Counter("dr_worker_failures_total")
	gDeadWorkers    = telemetry.Default().Gauge("dr_workers_dead")
)

// ErrWorkerDead marks task rejections caused by a failed worker; RunAllSpecs
// treats it (and faults.ErrCrash) as worker death and fails the task over to
// a survivor instead of retrying in place.
var ErrWorkerDead = errors.New("dr: worker dead")

// Config configures a Distributed R session.
type Config struct {
	// Workers is the number of worker nodes (>= 1).
	Workers int
	// InstancesPerWorker bounds concurrent tasks per worker — the number of
	// R instances started on each node (default 4; the paper uses 24).
	InstancesPerWorker int
	// TaskRetries caps in-place re-executions of a task that failed with a
	// non-fatal error in RunAll (0 = fail fast, the pre-recovery behaviour).
	// Worker-death failover is independent of this cap and always on.
	TaskRetries int
}

// Cluster is a running Distributed R session: one master plus workers.
type Cluster struct {
	cfg     Config
	workers []*Worker
	nextID  atomic.Uint64
	closed  atomic.Bool
}

// Start launches a session.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("dr: need at least 1 worker")
	}
	if cfg.InstancesPerWorker <= 0 {
		cfg.InstancesPerWorker = 4
	}
	if cfg.TaskRetries < 0 {
		cfg.TaskRetries = 0
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c.workers = append(c.workers, newWorker(i, cfg.InstancesPerWorker))
	}
	return c, nil
}

// Shutdown stops the session; subsequent task submissions fail.
func (c *Cluster) Shutdown() {
	if c.closed.Swap(true) {
		return
	}
	for _, w := range c.workers {
		w.close()
	}
}

// NumWorkers returns the worker count.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// InstancesPerWorker returns the per-worker executor width.
func (c *Cluster) InstancesPerWorker() int { return c.cfg.InstancesPerWorker }

// TaskRetries returns the configured in-place retry cap.
func (c *Cluster) TaskRetries() int { return c.cfg.TaskRetries }

// Worker returns worker i.
func (c *Cluster) Worker(i int) (*Worker, error) {
	if i < 0 || i >= len(c.workers) {
		return nil, fmt.Errorf("dr: no worker %d", i)
	}
	return c.workers[i], nil
}

// FailWorker marks worker i's executor dead — the crash mode used by fault
// injection and chaos tests. Queued and future submissions are rejected with
// ErrWorkerDead; RunAllSpecs re-executes the worker's tasks on survivors.
// The worker's partition store stays readable: an executor crash models a
// wedged R process, while the data survives the way Vertica's k-safe buddy
// projections keep segments available through node loss.
func (c *Cluster) FailWorker(i int) error {
	w, err := c.Worker(i)
	if err != nil {
		return err
	}
	if w.fail() {
		mWorkerFailures.Inc()
		gDeadWorkers.Add(1)
	}
	return nil
}

// Alive lists the ids of workers that have not failed, sorted.
func (c *Cluster) Alive() []int {
	var out []int
	for _, w := range c.workers {
		if !w.Dead() {
			out = append(out, w.id)
		}
	}
	return out
}

// nextAlive picks the first surviving worker after `from` in ring order, or
// -1 when every worker is dead.
func (c *Cluster) nextAlive(from int) int {
	n := len(c.workers)
	for k := 1; k <= n; k++ {
		cand := (from + k) % n
		if !c.workers[cand].Dead() {
			return cand
		}
	}
	return -1
}

// GenName allocates a cluster-unique object name (the master's symbol table
// namespace for distributed objects).
func (c *Cluster) GenName(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, c.nextID.Add(1))
}

// Task is a unit of work executed on a worker, with access to that worker's
// partition store.
type Task func(w *Worker) error

// TaskSpec pairs a task with an optional failover hook. When the task's
// assigned worker dies, RunAllSpecs re-targets the task to a surviving
// worker after calling Rebuild with it — the caller's chance to re-fetch
// lost partitions or re-point distributed-object metadata (the paper's
// partition re-fetch on task re-execution). A nil Rebuild means the task is
// location-independent and can simply re-run elsewhere.
type TaskSpec struct {
	Run     Task
	Rebuild func(replacement *Worker) error
}

// RunOpts tunes RunAllSpecs recovery.
type RunOpts struct {
	// Retries caps in-place re-executions after non-fatal task errors.
	Retries int
}

// Run submits one task to worker i and waits for it.
func (c *Cluster) Run(i int, t Task) error {
	return c.RunCtx(context.Background(), i, t)
}

// RunCtx is Run under a context: submission is refused once ctx is done (a
// running task is not interrupted — tasks are the unit of cancellation).
func (c *Cluster) RunCtx(ctx context.Context, i int, t Task) error {
	if err := verr.Canceled(ctx.Err()); err != nil {
		return err
	}
	w, err := c.Worker(i)
	if err != nil {
		return err
	}
	return runOnce(w, t)
}

// runOnce executes t on w through the bounded executor and waits, surfacing
// late rejections (shutdown or death while queued) and injected faults.
func runOnce(w *Worker, t Task) error {
	errCh := make(chan error, 1)
	w.submit(func(rejected error) {
		if rejected != nil {
			errCh <- rejected
			return
		}
		if err := faults.Check(faults.SiteDRTask); err != nil {
			errCh <- err
			return
		}
		errCh <- t(w)
	})
	return <-errCh
}

// RunAll executes, for each worker, a list of tasks. Tasks assigned to the
// same worker share that worker's bounded executor (at most
// InstancesPerWorker run concurrently); different workers run fully in
// parallel. Failed tasks are retried up to the cluster's TaskRetries cap and
// failed over on worker death; the first unrecovered error is returned.
func (c *Cluster) RunAll(tasks map[int][]Task) error {
	return c.RunAllCtx(context.Background(), tasks)
}

// RunAllCtx is RunAll under a context; see RunAllSpecsCtx.
func (c *Cluster) RunAllCtx(ctx context.Context, tasks map[int][]Task) error {
	specs := make(map[int][]TaskSpec, len(tasks))
	for wid, list := range tasks {
		for _, t := range list {
			specs[wid] = append(specs[wid], TaskSpec{Run: t})
		}
	}
	return c.RunAllSpecsCtx(ctx, specs, RunOpts{Retries: c.cfg.TaskRetries})
}

// RunAllSpecs is RunAll with explicit per-task failover hooks and recovery
// options.
func (c *Cluster) RunAllSpecs(tasks map[int][]TaskSpec, opts RunOpts) error {
	return c.RunAllSpecsCtx(context.Background(), tasks, opts)
}

// RunAllSpecsCtx is RunAllSpecs under a context. Cancellation is observed at
// task boundaries: tasks not yet submitted are refused, and retries/failovers
// of already-failed tasks stop. In-flight task bodies run to completion.
func (c *Cluster) RunAllSpecsCtx(ctx context.Context, tasks map[int][]TaskSpec, opts RunOpts) error {
	for wid := range tasks {
		if _, err := c.Worker(wid); err != nil {
			return err
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for wid, list := range tasks {
		for _, spec := range list {
			wg.Add(1)
			wid, spec := wid, spec
			go func() {
				defer wg.Done()
				record(c.runSpec(ctx, wid, spec, opts.Retries))
			}()
		}
	}
	wg.Wait()
	return firstErr
}

// runSpec drives one task to completion: in-place retries for ordinary
// errors, failover to survivors (with rebuild) on worker death.
func (c *Cluster) runSpec(ctx context.Context, wid int, spec TaskSpec, retries int) error {
	attempts := 0
	moves := 0
	for {
		if err := verr.Canceled(ctx.Err()); err != nil {
			return err
		}
		w, err := c.Worker(wid)
		if err != nil {
			return err
		}
		err = runOnce(w, spec.Run)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrWorkerDead) || errors.Is(err, faults.ErrCrash) {
			// The worker died (or an injected crash killed it mid-task):
			// mark it dead and move the task to the next survivor.
			_ = c.FailWorker(wid)
			if moves >= len(c.workers) {
				return err
			}
			next := c.nextAlive(wid)
			if next < 0 {
				return fmt.Errorf("dr: no surviving workers: %w", err)
			}
			moves++
			mFailovers.Inc()
			if spec.Rebuild != nil {
				if rerr := spec.Rebuild(c.workers[next]); rerr != nil {
					return fmt.Errorf("dr: failover rebuild on worker %d: %w", next, rerr)
				}
			}
			wid = next
			continue
		}
		if attempts < retries {
			attempts++
			mRetries.Inc()
			continue
		}
		return err
	}
}

// Worker is one Distributed R worker node: an in-memory partition store
// (the paper stages incoming data in /dev/shm) plus a bounded executor.
type Worker struct {
	id    int
	sem   chan struct{}
	mu    sync.RWMutex
	store map[string]any
	done  chan struct{}
	once  sync.Once
	dead  chan struct{}
	fonce sync.Once
}

func newWorker(id, instances int) *Worker {
	return &Worker{
		id:    id,
		sem:   make(chan struct{}, instances),
		store: make(map[string]any),
		done:  make(chan struct{}),
		dead:  make(chan struct{}),
	}
}

// ID returns the worker's node id.
func (w *Worker) ID() int { return w.id }

func (w *Worker) close() { w.once.Do(func() { close(w.done) }) }

// fail marks the worker dead, reporting whether this call was the first.
func (w *Worker) fail() bool {
	first := false
	w.fonce.Do(func() {
		close(w.dead)
		first = true
	})
	return first
}

// Dead reports whether the worker's executor has failed.
func (w *Worker) Dead() bool {
	select {
	case <-w.dead:
		return true
	default:
		return false
	}
}

// rejectErr names why a submission was turned away.
func (w *Worker) rejectErr() error {
	if w.Dead() {
		return fmt.Errorf("dr: worker %d: %w", w.id, ErrWorkerDead)
	}
	return fmt.Errorf("dr: worker %d is shut down", w.id)
}

// submit schedules fn on the worker's bounded executor. fn is called exactly
// once: with nil once the task holds an executor slot, or with a rejection
// error if the worker shut down or died first. Liveness is re-checked while
// queued for a slot and again after acquiring one, so a task that passed the
// initial check can never start running after Shutdown or FailWorker — the
// shutdown race the pre-recovery implementation had.
func (w *Worker) submit(fn func(rejected error)) {
	select {
	case <-w.done:
		mTasksRejected.Inc()
		fn(w.rejectErr())
		return
	case <-w.dead:
		mTasksRejected.Inc()
		fn(w.rejectErr())
		return
	default:
	}
	mTasksSubmitted.Inc()
	queued := telemetry.Default().Now()
	go func() {
		select {
		case <-w.done:
			mTasksRejected.Inc()
			fn(w.rejectErr())
			return
		case <-w.dead:
			mTasksRejected.Inc()
			fn(w.rejectErr())
			return
		case w.sem <- struct{}{}:
		}
		defer func() { <-w.sem }()
		// The slot may have been won in a race with close(done)/close(dead);
		// re-check so no task launches on a stopped worker.
		select {
		case <-w.done:
			mTasksRejected.Inc()
			fn(w.rejectErr())
			return
		case <-w.dead:
			mTasksRejected.Inc()
			fn(w.rejectErr())
			return
		default:
		}
		start := telemetry.Default().Now()
		mWaitNs.AddDuration(start - queued)
		gActive.Add(1)
		defer func() {
			gActive.Add(-1)
			mRunNs.AddDuration(telemetry.Default().Now() - start)
			mTasksRun.Inc()
		}()
		fn(nil)
	}()
}

// Put stores a partition value under key.
func (w *Worker) Put(key string, v any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.store[key] = v
}

// Get fetches a partition value.
func (w *Worker) Get(key string) (any, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	v, ok := w.store[key]
	return v, ok
}

// Delete removes a partition value.
func (w *Worker) Delete(key string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.store, key)
}

// Keys lists stored keys, sorted (diagnostics and tests).
func (w *Worker) Keys() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.store))
	for k := range w.store {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
