// Package odbc implements the baseline connector the paper measures against
// (§1.1, §3): a row-oriented, text-framed protocol where every R instance
// opens its own connection and issues its own SQL query for an ordered row
// range of the table. The three costs the paper attributes to this path are
// all real here:
//
//   - per-row text serialization on the server and parsing on the client
//     (ODBC's string conversion),
//   - a bounded server-side connection pool — hundreds of simultaneous
//     queries queue and "overwhelm the database",
//   - ordered row-range requests that ignore segment locality: a requested
//     range spans many nodes' segments (Fig. 5's problem statement).
package odbc

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/darray"
	"verticadr/internal/dr"
	"verticadr/internal/faults"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
)

// Per-row framing costs, the contrast telemetry draws against vft's binary
// columnar counters: serialize covers server-side text rendering, parse the
// client-side conversion back to typed columns.
var (
	mQueries     = telemetry.Default().Counter("odbc_queries_total")
	mRowsSent    = telemetry.Default().Counter("odbc_rows_sent_total")
	mBytesSent   = telemetry.Default().Counter("odbc_bytes_sent_total")
	mSerializeNs = telemetry.Default().Counter("odbc_serialize_nanos_total")
	mParseNs     = telemetry.Default().Counter("odbc_parse_nanos_total")
	mRetries     = telemetry.Default().Counter("odbc_query_retries_total")
)

// queryAttempts caps how many times Load retries one connection's range
// query. Range queries are read-only and idempotent, so a failed attempt
// (a dropped session, an injected fault) is simply reissued.
const queryAttempts = 3

// DB is the database surface the connector uses. internal/vertica.DB
// satisfies it.
type DB interface {
	TableDef(name string) (*catalog.TableDef, error)
	Segments(name string) ([]*colstore.Segment, error)
	NumNodes() int
}

// Server fronts a database with a bounded connection pool, emulating the
// contention of many simultaneous ODBC sessions.
type Server struct {
	db       DB
	sem      chan struct{}
	active   atomic.Int32
	peak     atomic.Int32
	rowsSent atomic.Int64
}

// NewServer wraps db with maxConcurrent query slots (default: 2 per node).
func NewServer(db DB, maxConcurrent int) *Server {
	if maxConcurrent <= 0 {
		maxConcurrent = 2 * db.NumNodes()
	}
	return &Server{db: db, sem: make(chan struct{}, maxConcurrent)}
}

// PeakConcurrency reports the highest number of simultaneously executing
// range queries observed (tests use it to verify queuing happens).
func (s *Server) PeakConcurrency() int { return int(s.peak.Load()) }

// RowsSent reports the total rows served over all connections.
func (s *Server) RowsSent() int64 { return s.rowsSent.Load() }

// queryRangeText serves rows [offset, offset+count) of the table in global
// row order (node 0's segment rows, then node 1's, ...), serialized as
// pipe-separated text lines. The requested range generally spans several
// nodes' segments — the locality destruction of §3.
func (s *Server) queryRangeText(table string, cols []string, offset, count int) (string, error) {
	mQueries.Inc()
	// A fault here models the whole query failing to start (a dropped
	// session); the client's retry loop reissues it.
	if err := faults.Check(faults.SiteODBCQuery); err != nil {
		return "", err
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	n := s.active.Add(1)
	defer s.active.Add(-1)
	for {
		p := s.peak.Load()
		if n <= p || s.peak.CompareAndSwap(p, n) {
			break
		}
	}
	def, err := s.db.TableDef(table)
	if err != nil {
		return "", err
	}
	if len(cols) == 0 {
		for _, c := range def.Schema {
			cols = append(cols, c.Name)
		}
	}
	segs, err := s.db.Segments(table)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	skip := offset
	remaining := count
	for _, seg := range segs {
		if remaining <= 0 {
			break
		}
		rows := seg.Rows()
		if skip >= rows {
			skip -= rows
			continue
		}
		// This segment contributes rows [skip, min(rows, skip+remaining)).
		take := rows - skip
		if take > remaining {
			take = remaining
		}
		// A fault here fails the stream mid-flight, after some rows were
		// already rendered — the retry must restart the whole range.
		if err := faults.Check(faults.SiteODBCRow); err != nil {
			return "", err
		}
		batch, err := seg.ReadAll(cols)
		if err != nil {
			return "", err
		}
		sub := batch.Slice(skip, skip+take)
		t0 := telemetry.Default().Now()
		if err := writeText(&sb, sub); err != nil {
			return "", err
		}
		mSerializeNs.AddDuration(telemetry.Default().Now() - t0)
		s.rowsSent.Add(int64(take))
		mRowsSent.Add(int64(take))
		remaining -= take
		skip = 0
	}
	mBytesSent.Add(int64(sb.Len()))
	return sb.String(), nil
}

// writeText renders a batch as the row-at-a-time text frames of the wire
// protocol: fields joined by '|', rows by '\n'.
func writeText(sb *strings.Builder, b *colstore.Batch) error {
	n := b.Len()
	for r := 0; r < n; r++ {
		for ci, col := range b.Cols {
			if ci > 0 {
				sb.WriteByte('|')
			}
			switch col.Type {
			case colstore.TypeInt64:
				sb.WriteString(strconv.FormatInt(col.Ints[r], 10))
			case colstore.TypeFloat64:
				sb.WriteString(strconv.FormatFloat(col.Floats[r], 'g', -1, 64))
			case colstore.TypeString:
				sb.WriteString(escape(col.Strs[r]))
			case colstore.TypeBool:
				if col.Bools[r] {
					sb.WriteByte('t')
				} else {
					sb.WriteByte('f')
				}
			default:
				return fmt.Errorf("odbc: cannot serialize type %v", col.Type)
			}
		}
		sb.WriteByte('\n')
	}
	return nil
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "|", `\p`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func unescape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				sb.WriteByte('\\')
			case 'p':
				sb.WriteByte('|')
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(s[i+1])
			}
			i++
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// Conn is one client connection.
type Conn struct{ srv *Server }

// Connect opens a connection against the server.
func Connect(srv *Server) *Conn { return &Conn{srv: srv} }

// QueryRange fetches rows [offset, offset+count) of the table's global row
// order and parses the text frames back into a typed batch — the client-side
// conversion cost of the ODBC path.
func (c *Conn) QueryRange(table string, cols []string, offset, count int) (*colstore.Batch, error) {
	def, err := c.srv.db.TableDef(table)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		for _, cs := range def.Schema {
			cols = append(cols, cs.Name)
		}
	}
	schema, err := def.Schema.Project(cols)
	if err != nil {
		return nil, err
	}
	text, err := c.srv.queryRangeText(table, cols, offset, count)
	if err != nil {
		return nil, err
	}
	t0 := telemetry.Default().Now()
	b, err := parseText(text, schema)
	mParseNs.AddDuration(telemetry.Default().Now() - t0)
	return b, err
}

func parseText(text string, schema colstore.Schema) (*colstore.Batch, error) {
	out := colstore.NewBatch(schema)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		fields := splitFields(line)
		if len(fields) != len(schema) {
			return nil, fmt.Errorf("odbc: row has %d fields, want %d", len(fields), len(schema))
		}
		vals := make([]any, len(fields))
		for i, f := range fields {
			switch schema[i].Type {
			case colstore.TypeInt64:
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("odbc: bad integer %q: %w", f, err)
				}
				vals[i] = v
			case colstore.TypeFloat64:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("odbc: bad float %q: %w", f, err)
				}
				vals[i] = v
			case colstore.TypeString:
				vals[i] = unescape(f)
			case colstore.TypeBool:
				vals[i] = f == "t"
			}
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// splitFields splits on unescaped '|'.
func splitFields(line string) []string {
	var out []string
	var cur strings.Builder
	for i := 0; i < len(line); i++ {
		switch {
		case line[i] == '\\' && i+1 < len(line):
			cur.WriteByte(line[i])
			cur.WriteByte(line[i+1])
			i++
		case line[i] == '|':
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(line[i])
		}
	}
	out = append(out, cur.String())
	return out
}

// Load is the parallel-ODBC loader the paper benchmarks (Fig. 1, 12, 13):
// connections clients open simultaneous sessions, client i requesting the
// i-th ordered 1/connections slice of the table. Each connection's result
// becomes one partition of a distributed frame, round-robin across workers.
func Load(db DB, srv *Server, c *dr.Cluster, table string, cols []string, connections int) (*darray.DFrame, error) {
	return LoadContext(context.Background(), db, srv, c, table, cols, connections)
}

// LoadContext is Load under a context: cancellation is observed per
// connection, between reconnect attempts — each range query is the unit of
// work, matching how a real ODBC client would abandon a load.
func LoadContext(ctx context.Context, db DB, srv *Server, c *dr.Cluster, table string, cols []string, connections int) (*darray.DFrame, error) {
	if connections <= 0 {
		connections = c.NumWorkers() * c.InstancesPerWorker()
	}
	def, err := db.TableDef(table)
	if err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		for _, cs := range def.Schema {
			cols = append(cols, cs.Name)
		}
	}
	segs, err := db.Segments(table)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range segs {
		total += s.Rows()
	}
	frame, err := darray.NewFrame(c, connections)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, connections)
	for i := 0; i < connections; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo := i * total / connections
			hi := (i + 1) * total / connections
			// Reconnect-and-retry, as a real ODBC client does when its
			// session drops: each attempt is a fresh connection reissuing
			// the same idempotent range query.
			var batch *colstore.Batch
			var err error
			for attempt := 0; attempt < queryAttempts; attempt++ {
				if err = verr.Canceled(ctx.Err()); err != nil {
					errs[i] = err
					return
				}
				if attempt > 0 {
					mRetries.Inc()
				}
				conn := Connect(srv)
				if batch, err = conn.QueryRange(table, cols, lo, hi-lo); err == nil {
					break
				}
			}
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = frame.Fill(i, batch)
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return frame, nil
}
