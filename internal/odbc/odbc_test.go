package odbc

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"verticadr/internal/colstore"
	"verticadr/internal/dr"
	"verticadr/internal/faults"
	"verticadr/internal/vertica"
)

func setup(t *testing.T, nodes int, rows int) (*vertica.DB, *Server) {
	t.Helper()
	db, err := vertica.Open(vertica.Config{Nodes: nodes, BlockRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`CREATE TABLE t (id INTEGER, x FLOAT, s VARCHAR, ok BOOLEAN) SEGMENTED BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "s", Type: colstore.TypeString},
		{Name: "ok", Type: colstore.TypeBool},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		_ = b.AppendRow(int64(i), float64(i)*1.5, "s|tr\\ing\n", i%2 == 0)
	}
	if err := db.Load("t", b); err != nil {
		t.Fatal(err)
	}
	return db, NewServer(db, 0)
}

func TestQueryRangeFull(t *testing.T) {
	db, srv := setup(t, 3, 500)
	_ = db
	conn := Connect(srv)
	b, err := conn.QueryRange("t", nil, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 500 {
		t.Fatalf("got %d rows", b.Len())
	}
	// All ids present exactly once; escaped strings survive.
	ids := append([]int64(nil), b.Cols[0].Ints...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("id multiset broken at %d: %d", i, id)
		}
	}
	if b.Cols[2].Strs[0] != "s|tr\\ing\n" {
		t.Fatalf("string round trip = %q", b.Cols[2].Strs[0])
	}
	if srv.RowsSent() != 500 {
		t.Fatalf("rows sent = %d", srv.RowsSent())
	}
}

func TestQueryRangeSlices(t *testing.T) {
	_, srv := setup(t, 3, 300)
	conn := Connect(srv)
	var all []int64
	for off := 0; off < 300; off += 100 {
		b, err := conn.QueryRange("t", []string{"id"}, off, 100)
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != 100 {
			t.Fatalf("slice at %d has %d rows", off, b.Len())
		}
		all = append(all, b.Cols[0].Ints...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, id := range all {
		if id != int64(i) {
			t.Fatalf("slices don't cover table exactly once (at %d: %d)", i, id)
		}
	}
}

func TestQueryRangePastEnd(t *testing.T) {
	_, srv := setup(t, 2, 50)
	conn := Connect(srv)
	b, err := conn.QueryRange("t", []string{"id"}, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 10 {
		t.Fatalf("got %d rows past end", b.Len())
	}
	b, err = conn.QueryRange("t", []string{"id"}, 500, 10)
	if err != nil || b.Len() != 0 {
		t.Fatalf("far past end: %d rows, %v", b.Len(), err)
	}
}

func TestQueryErrors(t *testing.T) {
	_, srv := setup(t, 2, 10)
	conn := Connect(srv)
	if _, err := conn.QueryRange("missing", nil, 0, 1); err == nil {
		t.Fatal("missing table should fail")
	}
	if _, err := conn.QueryRange("t", []string{"zz"}, 0, 1); err == nil {
		t.Fatal("missing column should fail")
	}
}

func TestConnectionPoolBounds(t *testing.T) {
	db, _ := setup(t, 2, 2000)
	srv := NewServer(db, 3)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := Connect(srv)
			if _, err := conn.QueryRange("t", []string{"id"}, i*100, 100); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if srv.PeakConcurrency() > 3 {
		t.Fatalf("pool bound violated: peak %d", srv.PeakConcurrency())
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"", "plain", "a|b", `back\slash`, "new\nline", `mix|\n|`}
	for _, s := range cases {
		if got := unescape(escape(s)); got != s {
			t.Fatalf("escape round trip %q -> %q", s, got)
		}
	}
}

func TestLoadIntoDistributedFrame(t *testing.T) {
	db, srv := setup(t, 3, 1200)
	c, err := dr.Start(dr.Config{Workers: 3, InstancesPerWorker: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	frame, err := Load(db, srv, c, "t", []string{"id", "x"}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NPartitions() != 12 {
		t.Fatalf("nparts = %d", frame.NPartitions())
	}
	if frame.Rows() != 1200 {
		t.Fatalf("rows = %d", frame.Rows())
	}
	// Each connection got an even slice (ordered range requests).
	for i := 0; i < 12; i++ {
		rows, _, err := frame.PartitionSize(i)
		if err != nil || rows != 100 {
			t.Fatalf("partition %d rows %d err %v", i, rows, err)
		}
	}
	var ids []int64
	for i := 0; i < 12; i++ {
		b, _ := frame.Part(i)
		ids = append(ids, b.Cols[0].Ints...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("load multiset broken at %d", i)
		}
	}
}

func TestLoadDefaultConnections(t *testing.T) {
	db, srv := setup(t, 2, 240)
	c, _ := dr.Start(dr.Config{Workers: 2, InstancesPerWorker: 3})
	defer c.Shutdown()
	frame, err := Load(db, srv, c, "t", []string{"id"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Default: workers * instances connections, like Distributed R spawning
	// one ODBC connection per R instance.
	if frame.NPartitions() != 6 {
		t.Fatalf("nparts = %d", frame.NPartitions())
	}
}

func TestLoadErrors(t *testing.T) {
	db, srv := setup(t, 2, 10)
	c, _ := dr.Start(dr.Config{Workers: 2})
	defer c.Shutdown()
	if _, err := Load(db, srv, c, "missing", nil, 2); err == nil {
		t.Fatal("missing table should fail")
	}
}

// TestLoadRetriesInjectedQueryFaults arms odbc.query failures and checks the
// per-connection reconnect loop absorbs them: the load succeeds, every row
// arrives exactly once, and retries are counted.
func TestLoadRetriesInjectedQueryFaults(t *testing.T) {
	in := faults.New(9)
	in.MustArm(faults.Rule{Site: faults.SiteODBCQuery, Kind: faults.Error, EveryN: 3})
	faults.Install(in)
	defer faults.Install(nil)

	db, srv := setup(t, 2, 600)
	c, err := dr.Start(dr.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	retries0 := mRetries.Value()
	frame, err := Load(db, srv, c, "t", []string{"id"}, 6)
	if err != nil {
		t.Fatalf("load under query faults should recover: %v", err)
	}
	if frame.Rows() != 600 {
		t.Fatalf("rows = %d", frame.Rows())
	}
	var ids []int64
	for p := 0; p < frame.NPartitions(); p++ {
		b, err := frame.Part(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, b.Cols[0].Ints...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("row %d missing or duplicated (got %d)", i, id)
		}
	}
	if mRetries.Value() == retries0 {
		t.Fatal("no retries recorded despite armed query faults")
	}
}

// TestLoadGivesUpAfterRetryBudget: a row-stream fault armed on every visit
// outlasts the retry cap and surfaces to the caller.
func TestLoadGivesUpAfterRetryBudget(t *testing.T) {
	in := faults.New(1)
	in.MustArm(faults.Rule{Site: faults.SiteODBCRow, Kind: faults.Error, EveryN: 1})
	faults.Install(in)
	defer faults.Install(nil)

	db, srv := setup(t, 2, 100)
	c, err := dr.Start(dr.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := Load(db, srv, c, "t", nil, 2); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected failure after retries exhausted", err)
	}
}
