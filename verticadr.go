// Package verticadr is a from-scratch Go reproduction of "Large-scale
// Predictive Analytics in Vertica: Fast Data Transfer, Distributed Model
// Creation, and In-database Prediction" (Prasad et al., SIGMOD 2015).
//
// It pairs an MPP columnar database (the Vertica substitute) with a
// distributed in-memory analytics runtime (the Distributed R substitute)
// and provides the paper's three contributions as a library:
//
//   - fast, parallel data transfer between the database and the analytics
//     runtime (Vertica Fast Transfer, with locality-preserving and uniform
//     distribution policies), plus the classic parallel-ODBC baseline;
//   - distributed model creation: K-means, GLM/linear regression via
//     Newton–Raphson, cross-validation and random forests over distributed
//     arrays with uneven partitions;
//   - in-database model deployment and parallel prediction: models are
//     serialized into the database's replicated file system, catalogued in
//     the R_Models table, and applied with SQL — e.g.
//     SELECT GlmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t.
//
// Quickstart (the paper's Figure 3 workflow):
//
//	s, _ := verticadr.Start(verticadr.Config{DBNodes: 4})
//	defer s.Close()
//	s.Exec(`CREATE TABLE mytable (a FLOAT, b FLOAT, y FLOAT)`)
//	// ... load data ...
//	x, _, _ := s.DB2DArray("mytable", []string{"a", "b"}, "")
//	y, _, _ := s.DB2DArray("mytable", []string{"y"}, "")
//	model, _ := verticadr.GLM(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian})
//	s.DeployModel("rModel", "me", "forecast", model)
//	res, _ := s.Query(`SELECT GlmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable`)
//	_ = res
package verticadr

import (
	"verticadr/internal/algos"
	"verticadr/internal/core"
	"verticadr/internal/darray"
	"verticadr/internal/vft"
)

// Config sizes a session: database nodes, Distributed R workers, R
// instances per worker, optional YARN brokering and persistence.
type Config = core.Config

// Session is a paired database + Distributed R runtime (Figure 2 of the
// paper). Sessions are created with Start and must be Closed.
type Session = core.Session

// Start launches a session (distributedR_start(), Fig. 3 lines 1–3).
func Start(cfg Config) (*Session, error) { return core.Start(cfg) }

// Transfer policies for DB2DArray / DB2DFrame (§3.2).
const (
	// PolicyLocality preserves table-segment locality (Fig. 5); requires
	// equal database-node and worker counts.
	PolicyLocality = vft.PolicyLocality
	// PolicyUniform spreads rows evenly regardless of segmentation skew
	// (Fig. 6).
	PolicyUniform = vft.PolicyUniform
)

// Distributed data structures (§4, Table 1).
type (
	// DArray is a row-partitioned distributed matrix supporting uneven
	// partition sizes.
	DArray = darray.DArray
	// DFrame is a distributed typed data frame.
	DFrame = darray.DFrame
	// DList is a distributed list.
	DList = darray.DList
	// Mat is one dense matrix partition.
	Mat = darray.Mat
)

// NewMat allocates a zeroed matrix partition.
func NewMat(rows, cols int) *Mat { return darray.NewMat(rows, cols) }

// Machine-learning models and solvers (§7.3's workloads).
type (
	// KmeansModel is a fitted clustering model.
	KmeansModel = algos.KmeansModel
	// KmeansOpts configures Kmeans.
	KmeansOpts = algos.KmeansOpts
	// GLMModel is a fitted (generalized) linear model.
	GLMModel = algos.GLMModel
	// GLMOpts configures GLM.
	GLMOpts = algos.GLMOpts
	// ForestModel is a bagged random forest.
	ForestModel = algos.ForestModel
	// ForestOpts configures RandomForest.
	ForestOpts = algos.ForestOpts
	// CVResult holds cross-validation deviances.
	CVResult = algos.CVResult
	// Family selects the GLM response family.
	Family = algos.Family
)

// GLM families.
const (
	Gaussian = algos.Gaussian
	Binomial = algos.Binomial
	Poisson  = algos.Poisson
)

// Kmeans fits distributed K-means (hpdkmeans) over a distributed array.
func Kmeans(x *DArray, opts KmeansOpts) (*KmeansModel, error) { return algos.Kmeans(x, opts) }

// GLM fits a generalized linear model with distributed Newton–Raphson
// (hpdglm, Fig. 3 line 6).
func GLM(x, y *DArray, opts GLMOpts) (*GLMModel, error) { return algos.GLM(x, y, opts) }

// LM fits ordinary least squares (Gaussian GLM).
func LM(x, y *DArray) (*GLMModel, error) { return algos.LM(x, y) }

// CrossValidate runs k-fold cross-validation (cv.hpdglm, Fig. 3 line 7).
func CrossValidate(x, y *DArray, opts GLMOpts, folds int) (*CVResult, error) {
	return algos.CrossValidate(x, y, opts, folds)
}

// RandomForest trains a bagged forest with per-worker data locality.
func RandomForest(x, y *DArray, opts ForestOpts) (*ForestModel, error) {
	return algos.RandomForest(x, y, opts)
}
