// Package verticadr is a from-scratch Go reproduction of "Large-scale
// Predictive Analytics in Vertica: Fast Data Transfer, Distributed Model
// Creation, and In-database Prediction" (Prasad et al., SIGMOD 2015).
//
// It pairs an MPP columnar database (the Vertica substitute) with a
// distributed in-memory analytics runtime (the Distributed R substitute)
// and provides the paper's three contributions as a library:
//
//   - fast, parallel data transfer between the database and the analytics
//     runtime (Vertica Fast Transfer, with locality-preserving and uniform
//     distribution policies), plus the classic parallel-ODBC baseline;
//   - distributed model creation: K-means, GLM/linear regression via
//     Newton–Raphson, cross-validation and random forests over distributed
//     arrays with uneven partitions;
//   - in-database model deployment and parallel prediction: models are
//     serialized into the database's replicated file system, catalogued in
//     the R_Models table, and applied with SQL — e.g.
//     SELECT GlmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t.
//
// # Context-first API
//
// Every operation that does real work takes a context.Context in its
// *Context form — QueryContext, ExecContext, DB2DArrayContext,
// DB2DFrameContext, LoadODBCContext, DB2RDDContext. Cancellation and
// deadlines are honored inside the engine at scan-block and
// aggregation-chunk boundaries, so a canceled query stops within one
// storage block rather than running to completion. The short names (Query,
// Exec, DB2DArray, ...) remain as thin wrappers that delegate with
// context.Background().
//
// Failures at the public boundaries are typed: errors.Is(err,
// verticadr.ErrTableNotFound / ErrUnknownColumn / ErrModelNotFound /
// ErrOverloaded / ErrCanceled / ErrClosed) dispatches on the condition
// without string matching, including across the serving protocol below.
//
// Quickstart (the paper's Figure 3 workflow):
//
//	s, _ := verticadr.Start(verticadr.Config{DBNodes: 4})
//	defer s.Close()
//	ctx := context.Background()
//	s.ExecContext(ctx, `CREATE TABLE mytable (a FLOAT, b FLOAT, y FLOAT)`)
//	// ... load data ...
//	x, _, _ := s.DB2DArrayContext(ctx, "mytable", []string{"a", "b"}, "")
//	y, _, _ := s.DB2DArrayContext(ctx, "mytable", []string{"y"}, "")
//	model, _ := verticadr.GLM(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian})
//	s.DeployModel("rModel", "me", "forecast", model)
//	res, _ := s.QueryContext(ctx, `SELECT GlmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable`)
//	_ = res
//
// # Serving
//
// For many concurrent callers, wrap the session in the serving layer: a
// bounded-concurrency front door with a prepared-statement plan cache, a
// shared deserialized-model cache, and admission control that sheds excess
// load with ErrOverloaded instead of collapsing. It is also exposed over a
// TCP line protocol by cmd/vdr-serve.
//
//	srv := verticadr.NewServer(s, verticadr.ServerConfig{MaxConcurrent: 8})
//	srv.Prepare("score", `SELECT GlmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable`)
//	res, err := srv.Execute(ctx, "score")
//	if errors.Is(err, verticadr.ErrOverloaded) { /* back off and retry */ }
//
// # Multi-node serving
//
// Several vdr-serve processes form a sharded cluster: tables are hash- or
// round-robin-segmented across the nodes with k-way replication, every
// node routes queries cluster-wide ("every node is an initiator"), and
// idempotent reads fail over to a replica when a node dies. The unified
// Client talks to one server or a whole cluster through the same API:
//
//	cl, _ := verticadr.Dial(ctx, verticadr.ClusterConfig{
//	    Addrs: []string{"10.0.0.1:5433", "10.0.0.2:5433", "10.0.0.3:5433"},
//	    Replicas: 2,
//	})
//	defer cl.Close()
//	cl.Exec(ctx, `CREATE TABLE pts (id FLOAT, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`)
//	cl.Load(ctx, "pts", rows)                       // COPY, split across shards
//	res, _ := cl.Predict(ctx, "rModel", "pts", "a", "b")
//	if errors.Is(err, verticadr.ErrNodeDown) { /* every replica of a shard is gone */ }
//
// # Migration from the pre-context / single-node API
//
// Old signature                         → new signature
//
//	s.Query(sql)                       → s.QueryContext(ctx, sql)
//	s.Exec(sql)                        → s.ExecContext(ctx, sql)
//	s.DB2DArray(table, cols, policy)   → s.DB2DArrayContext(ctx, ...)
//	s.DB2DFrame(table, cols, policy)   → s.DB2DFrameContext(ctx, ...)
//	s.LoadODBC(table, cols, conns)     → s.LoadODBCContext(ctx, ...)
//	s.DB2RDD(sc, table, cols, policy)  → s.DB2RDDContext(ctx, sc, ...)
//
// and from the single-connection client to the topology-aware one:
//
//	DialServer(addr) *ServerClient     → Dial(ctx, ClusterConfig{Addrs: []string{addr}}) *Client
//	sc.Query(ctx, sql)                 → cl.Query(ctx, sql)        (routed + failover)
//	sc.Prepare(ctx, name, sql)         → cl.Prepare(ctx, name, sql) (replayed on failover)
//	sc.Execute(ctx, name, args...)     → cl.Execute(ctx, name, ...)
//	manual GlmPredict SQL              → cl.Predict(ctx, model, table, cols...)
//	(no COPY over the wire)            → cl.Load(ctx, table, rows)
//
// DialServer remains as a one-address convenience wrapper returning the
// unified Client; ServerClient stays available for raw single-connection
// protocol access via internal/server.Dial semantics (ping, extension
// calls). The old names still compile and behave identically; new code
// should pass a real context and a ClusterConfig.
package verticadr

import (
	"context"
	"net/http"

	"verticadr/internal/algos"
	"verticadr/internal/core"
	"verticadr/internal/darray"
	"verticadr/internal/server"
	"verticadr/internal/telemetry"
	"verticadr/internal/verr"
	"verticadr/internal/vft"
)

// Typed error vocabulary, matchable with errors.Is end to end — including
// errors that crossed the vdr-serve TCP protocol.
var (
	// ErrTableNotFound: a statement referenced a table absent from the catalog.
	ErrTableNotFound = verr.ErrTableNotFound
	// ErrUnknownColumn: an expression referenced a column the table lacks.
	ErrUnknownColumn = verr.ErrUnknownColumn
	// ErrModelNotFound: a prediction referenced a model that is not deployed.
	ErrModelNotFound = verr.ErrModelNotFound
	// ErrOverloaded: admission control shed the query; retry after backoff.
	ErrOverloaded = verr.ErrOverloaded
	// ErrCanceled: the query's context ended and execution stopped at the
	// next block boundary.
	ErrCanceled = verr.ErrCanceled
	// ErrClosed: the session or server is shut down.
	ErrClosed = verr.ErrClosed
)

// Serving layer (one front door over a Session for many concurrent callers).
type (
	// Server is the concurrent query-serving layer: plan cache, model
	// cache, admission control, per-query deadlines.
	Server = server.Server
	// ServerConfig tunes concurrency limits, queue bounds and cache sizes.
	ServerConfig = server.Config
	// ServerClient is the TCP line-protocol client for cmd/vdr-serve.
	ServerClient = server.Client
	// Rows is a protocol-level result set (columns, row values, optional
	// profile), as returned by Client and ServerClient queries.
	Rows = server.Rows
)

// NewServer wraps a session in the serving layer.
func NewServer(s *Session, cfg ServerConfig) *Server { return server.New(s, cfg) }

// ListenAndServe exposes a Server on a TCP address (the cmd/vdr-serve
// protocol); returns the bound endpoint.
func ListenAndServe(srv *Server, addr string) (*server.TCPServer, error) {
	return server.Listen(srv, addr)
}

// DialServer connects to a single vdr-serve endpoint: the one-address
// convenience wrapper over Dial. For clusters — or to control dial
// timeouts and failover — use Dial with a ClusterConfig directly.
func DialServer(addr string) (*Client, error) {
	return Dial(context.Background(), ClusterConfig{Addrs: []string{addr}})
}

// RawDial opens one protocol connection without routing or failover (the
// pre-cluster DialServer behavior), for callers that need the bare wire:
// extension ops, or benchmarking a specific node.
func RawDial(addr string) (*ServerClient, error) { return server.Dial(addr) }

// Observability: traces, statement statistics and the admin HTTP surface.
type (
	// Span is one node in a query trace; End it to close the span.
	Span = telemetry.Span
	// TraceRecord is one trace's spans, as served by /traces/recent.
	TraceRecord = telemetry.TraceRecord
	// StatementStats is the server's pg_stat_statements analogue.
	StatementStats = server.StmtStats
)

// StartTrace opens a root span on the default telemetry registry and returns
// a context carrying it. Pass that context through QueryContext, Server or
// ServerClient calls and every layer — client protocol, server admission,
// execution, per-operator engine stages — attaches its spans under it,
// including across the vdr-serve wire. End the returned span to close the
// trace.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	return telemetry.Default().StartTrace(ctx, name)
}

// RecentTraces returns the most recent n completed or in-flight traces from
// the default registry's bounded span buffer.
func RecentTraces(n int) []TraceRecord { return telemetry.Default().Spans().Traces(n) }

// MetricsText renders every telemetry series in Prometheus text exposition
// format (what the vdr-serve admin endpoint serves at /metrics).
func MetricsText() string { return telemetry.Default().PromText() }

// AdminHandler is the observability HTTP surface for a Server — /metrics,
// /statements, /traces/recent, /healthz and /debug/pprof/ — for embedding
// vdr-serve's -admin endpoint in another process. On clustered nodes pass
// server.WithClusterState to include the router's per-peer view in
// /healthz.
func AdminHandler(srv *Server, opts ...server.AdminOption) http.Handler {
	return server.AdminHandler(srv, opts...)
}

// Config sizes a session: database nodes, Distributed R workers, R
// instances per worker, optional YARN brokering and persistence.
type Config = core.Config

// Session is a paired database + Distributed R runtime (Figure 2 of the
// paper). Sessions are created with Start and must be Closed.
type Session = core.Session

// Start launches a session (distributedR_start(), Fig. 3 lines 1–3).
func Start(cfg Config) (*Session, error) { return core.Start(cfg) }

// Transfer policies for DB2DArray / DB2DFrame (§3.2).
const (
	// PolicyLocality preserves table-segment locality (Fig. 5); requires
	// equal database-node and worker counts.
	PolicyLocality = vft.PolicyLocality
	// PolicyUniform spreads rows evenly regardless of segmentation skew
	// (Fig. 6).
	PolicyUniform = vft.PolicyUniform
)

// Distributed data structures (§4, Table 1).
type (
	// DArray is a row-partitioned distributed matrix supporting uneven
	// partition sizes.
	DArray = darray.DArray
	// DFrame is a distributed typed data frame.
	DFrame = darray.DFrame
	// DList is a distributed list.
	DList = darray.DList
	// Mat is one dense matrix partition.
	Mat = darray.Mat
)

// NewMat allocates a zeroed matrix partition.
func NewMat(rows, cols int) *Mat { return darray.NewMat(rows, cols) }

// Machine-learning models and solvers (§7.3's workloads).
type (
	// KmeansModel is a fitted clustering model.
	KmeansModel = algos.KmeansModel
	// KmeansOpts configures Kmeans.
	KmeansOpts = algos.KmeansOpts
	// GLMModel is a fitted (generalized) linear model.
	GLMModel = algos.GLMModel
	// GLMOpts configures GLM.
	GLMOpts = algos.GLMOpts
	// ForestModel is a bagged random forest.
	ForestModel = algos.ForestModel
	// ForestOpts configures RandomForest.
	ForestOpts = algos.ForestOpts
	// CVResult holds cross-validation deviances.
	CVResult = algos.CVResult
	// Family selects the GLM response family.
	Family = algos.Family
)

// GLM families.
const (
	Gaussian = algos.Gaussian
	Binomial = algos.Binomial
	Poisson  = algos.Poisson
)

// Kmeans fits distributed K-means (hpdkmeans) over a distributed array.
func Kmeans(x *DArray, opts KmeansOpts) (*KmeansModel, error) { return algos.Kmeans(x, opts) }

// GLM fits a generalized linear model with distributed Newton–Raphson
// (hpdglm, Fig. 3 line 6).
func GLM(x, y *DArray, opts GLMOpts) (*GLMModel, error) { return algos.GLM(x, y, opts) }

// LM fits ordinary least squares (Gaussian GLM).
func LM(x, y *DArray) (*GLMModel, error) { return algos.LM(x, y) }

// CrossValidate runs k-fold cross-validation (cv.hpdglm, Fig. 3 line 7).
func CrossValidate(x, y *DArray, opts GLMOpts, folds int) (*CVResult, error) {
	return algos.CrossValidate(x, y, opts, folds)
}

// RandomForest trains a bagged forest with per-worker data locality.
func RandomForest(x, y *DArray, opts ForestOpts) (*ForestModel, error) {
	return algos.RandomForest(x, y, opts)
}
