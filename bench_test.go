// Benchmarks: one per table and figure of the paper, plus the ablations
// DESIGN.md calls out. Cluster-scale figures (whose axes are 50–400 GB or
// 8–24 cores we do not have) benchmark the calibrated simulation that
// regenerates them; everything else drives the real engines at reduced
// scale. `go test -bench=. -benchmem` runs the lot; cmd/vdr-bench prints
// the paper-shaped series.
package verticadr_test

import (
	"fmt"
	"testing"

	"verticadr"
	"verticadr/internal/bench"
	"verticadr/internal/darray"
	"verticadr/internal/hdfs"
	"verticadr/internal/rbaseline"
	"verticadr/internal/spark"
	"verticadr/internal/vft"
	"verticadr/internal/workload"
)

func newEnv(b *testing.B, dbNodes, workers, instances int) *bench.Env {
	b.Helper()
	e, err := bench.NewEnv(dbNodes, workers, instances)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	return e
}

func mustLoad(b *testing.B, e *bench.Env, table string, rows, feats int) {
	b.Helper()
	if err := e.LoadFeatureTable(table, rows, feats, 1); err != nil {
		b.Fatal(err)
	}
}

// --- Figure 1: single-connection ODBC baseline (real, reduced scale). ---

func BenchmarkFig1ODBCBaseline(b *testing.B) {
	e := newEnv(b, 4, 4, 2)
	mustLoad(b, e, "t", 20000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := e.S.LoadODBC("t", nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		if frame.Rows() != 20000 {
			b.Fatal("row loss")
		}
	}
	b.ReportMetric(float64(20000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- Figure 12: parallel ODBC vs VFT on the live engines. ---

func BenchmarkFig12TransferSmall(b *testing.B) {
	e := newEnv(b, 4, 4, 4)
	mustLoad(b, e, "t", 40000, 5)
	b.Run("ODBC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frame, err := e.S.LoadODBC("t", nil, 16)
			if err != nil {
				b.Fatal(err)
			}
			if frame.Rows() != 40000 {
				b.Fatal("row loss")
			}
		}
		b.ReportMetric(float64(40000*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("VFT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			frame, _, err := e.S.DB2DFrame("t", nil, verticadr.PolicyLocality)
			if err != nil {
				b.Fatal(err)
			}
			if frame.Rows() != 40000 {
				b.Fatal("row loss")
			}
		}
		b.ReportMetric(float64(40000*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// --- Figures 13 & 14: cluster-scale transfer (calibrated simulation). ---

func BenchmarkFig13TransferLarge(b *testing.B) {
	c := bench.DefaultCalib()
	for i := 0; i < b.N; i++ {
		f := bench.Fig13(c)
		if f.Get("VFT").Get(400) > 600 {
			b.Fatal("VFT regression: >10 min at 400 GB")
		}
	}
}

func BenchmarkFig14Breakdown(b *testing.B) {
	c := bench.DefaultCalib()
	for i := 0; i < b.N; i++ {
		br := bench.SimVFTTransfer(c, 400, 12, 24)
		if br.DBPart <= 0 || br.Total < br.DBPart {
			b.Fatal("breakdown inconsistent")
		}
	}
}

// --- Figures 15 & 16: in-database prediction on the live engines. ---

func benchPredict(b *testing.B, query string, deploy func(e *bench.Env) error) {
	e := newEnv(b, 4, 4, 4)
	mustLoad(b, e, "pts", 100000, 6)
	if err := deploy(e); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.S.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 100000 {
			b.Fatal("row loss")
		}
	}
	b.ReportMetric(float64(100000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkFig15KmeansPredict(b *testing.B) {
	benchPredict(b,
		`SELECT KmeansPredict(x0, x1, x2, x3, x4, x5 USING PARAMETERS model='km') OVER (PARTITION BEST) FROM pts`,
		func(e *bench.Env) error {
			km := &verticadr.KmeansModel{K: 8, Centers: make([][]float64, 8)}
			for i := range km.Centers {
				c := make([]float64, 6)
				for j := range c {
					c[j] = float64(i - 4)
				}
				km.Centers[i] = c
			}
			return e.S.DeployModel("km", "bench", "", km)
		})
}

func BenchmarkFig16GlmPredict(b *testing.B) {
	benchPredict(b,
		`SELECT GlmPredict(x0, x1, x2, x3, x4, x5 USING PARAMETERS model='lm') OVER (PARTITION BEST) FROM pts`,
		func(e *bench.Env) error {
			lm := &verticadr.GLMModel{Family: verticadr.Gaussian,
				Coefficients: []float64{1, 0.5, -0.5, 1, -1, 2, -2}}
			return e.S.DeployModel("lm", "bench", "", lm)
		})
}

// --- Figure 17: K-means, stock R baseline vs Distributed R (real). ---

func BenchmarkFig17KmeansCores(b *testing.B) {
	data := workload.GenKmeans(1, 20000, 10, 20, 1.0)
	b.Run("R-single-thread", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rbaseline.Kmeans(data.Points, 20, 3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DistributedR", func(b *testing.B) {
		e := newEnv(b, 2, 4, 4)
		m := darray.NewMat(len(data.Points), 10)
		for i, p := range data.Points {
			copy(m.Row(i), p)
		}
		x, err := darray.FromMat(e.S.DR, m, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := verticadr.Kmeans(x, verticadr.KmeansOpts{K: 20, MaxIter: 3, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 18: regression, QR baseline vs Newton–Raphson (real). ---

func BenchmarkFig18RegressionCores(b *testing.B) {
	data := workload.GenLinear(3, 30000, 7, 0.1)
	b.Run("R-QR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rbaseline.LM(data.X, data.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DR-NewtonRaphson", func(b *testing.B) {
		e := newEnv(b, 2, 4, 4)
		x, y := toArrays(b, e, data, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := verticadr.LM(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func toArrays(b *testing.B, e *bench.Env, data *workload.RegressionData, nparts int) (*verticadr.DArray, *verticadr.DArray) {
	b.Helper()
	m := darray.NewMat(len(data.X), len(data.X[0]))
	for i, r := range data.X {
		copy(m.Row(i), r)
	}
	ym := darray.NewMat(len(data.Y), 1)
	copy(ym.Data, data.Y)
	x, err := darray.FromMat(e.S.DR, m, nparts)
	if err != nil {
		b.Fatal(err)
	}
	y, err := darray.FromMat(e.S.DR, ym, nparts)
	if err != nil {
		b.Fatal(err)
	}
	return x, y
}

// --- Figure 19: regression weak scaling over worker counts (real). ---

func BenchmarkFig19RegressionNodes(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			e := newEnv(b, workers, workers, 2)
			data := workload.GenLinear(5, 10000*workers, 10, 0.1) // proportional rows
			x, y := toArrays(b, e, data, workers*2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := verticadr.LM(x, y)
				if err != nil {
					b.Fatal(err)
				}
				if !m.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// --- Figure 20: K-means, Distributed R vs the Spark comparator (real). ---

func BenchmarkFig20KmeansVsSpark(b *testing.B) {
	data := workload.GenKmeans(7, 20000, 10, 10, 1.0)
	b.Run("DistributedR", func(b *testing.B) {
		e := newEnv(b, 2, 4, 4)
		m := darray.NewMat(len(data.Points), 10)
		for i, p := range data.Points {
			copy(m.Row(i), p)
		}
		x, err := darray.FromMat(e.S.DR, m, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := verticadr.Kmeans(x, verticadr.KmeansOpts{K: 10, MaxIter: 3, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Spark", func(b *testing.B) {
		fs, err := hdfs.New(hdfs.Config{DataNodes: 4, BlockSize: 1 << 18, Replication: 3})
		if err != nil {
			b.Fatal(err)
		}
		if err := spark.WriteCSV(fs, "pts.csv", data.Points); err != nil {
			b.Fatal(err)
		}
		ctx, err := spark.NewContext(fs, 8)
		if err != nil {
			b.Fatal(err)
		}
		rdd, err := ctx.TextFile("pts.csv")
		if err != nil {
			b.Fatal(err)
		}
		rdd = rdd.Cache()
		if _, err := rdd.Count(); err != nil { // materialize cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := spark.Kmeans(rdd, 10, 3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 21: end-to-end load + iterate, both stacks (real). ---

func BenchmarkFig21EndToEnd(b *testing.B) {
	data := workload.GenKmeans(9, 20000, 8, 5, 1.0)
	b.Run("Vertica+DR", func(b *testing.B) {
		e := newEnv(b, 4, 4, 4)
		mustLoad(b, e, "pts", 20000, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, _, err := e.S.DB2DArray("pts", []string{"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"}, "")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := verticadr.Kmeans(x, verticadr.KmeansOpts{K: 5, MaxIter: 2, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Spark+HDFS", func(b *testing.B) {
		fs, err := hdfs.New(hdfs.Config{DataNodes: 4, BlockSize: 1 << 18, Replication: 3})
		if err != nil {
			b.Fatal(err)
		}
		if err := spark.WriteCSV(fs, "pts.csv", data.Points); err != nil {
			b.Fatal(err)
		}
		ctx, err := spark.NewContext(fs, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rdd, err := ctx.TextFile("pts.csv") // load (parse) every iteration
			if err != nil {
				b.Fatal(err)
			}
			if _, err := spark.Kmeans(rdd.Cache(), 5, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 1 and Figure 10 (real). ---

func BenchmarkTable1Constructs(b *testing.B) {
	e := newEnv(b, 2, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Table1Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ModelCatalog(b *testing.B) {
	e := newEnv(b, 3, 3, 2)
	lm := &verticadr.GLMModel{Family: verticadr.Gaussian, Coefficients: []float64{1, 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("m%d", i)
		if err := e.S.DeployModel(name, "bench", "d", lm); err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.S.Models.Load(name, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4). ---

func BenchmarkAblationTransferPolicy(b *testing.B) {
	for _, policy := range []string{vft.PolicyLocality, vft.PolicyUniform} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			e := newEnv(b, 4, 4, 4)
			mustLoad(b, e, "t", 40000, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frame, _, err := e.S.DB2DFrame("t", nil, policy)
				if err != nil {
					b.Fatal(err)
				}
				x, err := frame.AsDArray(nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := verticadr.Kmeans(x, verticadr.KmeansOpts{K: 4, MaxIter: 2, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationBufferSize(b *testing.B) {
	e := newEnv(b, 4, 4, 4)
	mustLoad(b, e, "t", 40000, 4)
	for _, psize := range []int{128, 1024, 8192} {
		psize := psize
		b.Run(fmt.Sprintf("psize-%d", psize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := vft.Load(e.S.DB, e.S.DR, e.S.Hub, "t", nil, vft.PolicyLocality, psize)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationConnections(b *testing.B) {
	e := newEnv(b, 4, 4, 4)
	mustLoad(b, e, "t", 40000, 4)
	for _, conns := range []int{1, 4, 16, 64} {
		conns := conns
		b.Run(fmt.Sprintf("conns-%d", conns), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.S.LoadODBC("t", nil, conns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationPredictParallel(b *testing.B) {
	for _, inst := range []int{1, 4, 8} {
		inst := inst
		b.Run(fmt.Sprintf("udf-instances-%d", inst), func(b *testing.B) {
			e, err := bench.NewEnv(4, 4, inst)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(e.Close)
			mustLoad(b, e, "pts", 50000, 4)
			lm := &verticadr.GLMModel{Family: verticadr.Gaussian,
				Coefficients: []float64{1, 1, 1, 1, 1}}
			if err := e.S.DeployModel("lm", "bench", "", lm); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.S.Query(`SELECT GlmPredict(x0, x1, x2, x3 USING PARAMETERS model='lm') OVER (PARTITION BEST) FROM pts`)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 50000 {
					b.Fatal("row loss")
				}
			}
		})
	}
}

func BenchmarkAblationSolver(b *testing.B) {
	data := workload.GenLinear(11, 20000, 6, 0.05)
	b.Run("NewtonRaphson", func(b *testing.B) {
		e := newEnv(b, 2, 2, 2)
		x, y := toArrays(b, e, data, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := verticadr.LM(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rbaseline.LM(data.X, data.Y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
