package verticadr_test

import (
	"math"
	"testing"

	"verticadr"
)

// TestPublicAPIWorkflow exercises the facade exactly as the README's
// quickstart does: everything a downstream user touches must work through
// the exported surface alone.
func TestPublicAPIWorkflow(t *testing.T) {
	s, err := verticadr.Start(verticadr.Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 2, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Exec(`CREATE TABLE t (a FLOAT, y FLOAT)`); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		a := float64(i%100)/50 - 1
		cols[0][i] = a
		cols[1][i] = 2 + 3*a
	}
	if err := s.DB.LoadColumns("t", cols); err != nil {
		t.Fatal(err)
	}

	x, _, err := s.DB2DArray("t", []string{"a"}, verticadr.PolicyLocality)
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := s.DB2DArray("t", []string{"y"}, verticadr.PolicyLocality)
	if err != nil {
		t.Fatal(err)
	}
	model, err := verticadr.LM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Coefficients[0]-2) > 1e-6 || math.Abs(model.Coefficients[1]-3) > 1e-6 {
		t.Fatalf("coefficients = %v", model.Coefficients)
	}
	cv, err := verticadr.CrossValidate(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian}, 4)
	if err != nil || cv.Folds != 4 {
		t.Fatalf("cv: %+v %v", cv, err)
	}
	if err := s.DeployModel("m", "test", "noiseless line", model); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT GlmPredict(a USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t`)
	if err != nil || res.Len() != n {
		t.Fatalf("predict: %d rows, %v", res.Len(), err)
	}

	// K-means and random forest through the facade.
	km, err := verticadr.Kmeans(x, verticadr.KmeansOpts{K: 2, Seed: 1, MaxIter: 10})
	if err != nil || len(km.Centers) != 2 {
		t.Fatalf("kmeans: %+v %v", km, err)
	}
	rf, err := verticadr.RandomForest(x, y, verticadr.ForestOpts{Trees: 4, MaxDepth: 3, Seed: 1})
	if err != nil || len(rf.Trees) != 4 {
		t.Fatalf("forest: %v", err)
	}
	// Mat helper.
	m := verticadr.NewMat(2, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatal("mat facade")
	}
}
