// Command vdr-serve runs the concurrent query-serving layer (internal/server)
// over a fresh in-process session: the deployment the paper's in-database
// prediction (§5) implies — many clients scoring against deployed models at
// once — exposed on a TCP line protocol that shares the transfer plane's
// frame layout.
//
// Serve mode (default) listens on -addr; with -demo it first creates the
// serving fixture (table serve_pts, model serve_glm) so clients can issue
// prediction queries immediately.
//
// With -data DIR the server is durable: ingest is write-ahead-logged and
// fsync-acknowledged, startup recovers the previous run's state (checkpoint
// image + log replay), and a graceful shutdown writes a fresh checkpoint.
// The -demo fixture is seeded only into a fresh directory.
//
// Bench mode (-bench) runs the closed-loop load generator instead: the
// unprepared single-shot path vs. the prepared+cached path at -concurrency,
// then an overload phase against a deliberately tiny server, and writes the
// figures to -out (BENCH_PR5.json, `make serve-bench`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"verticadr/internal/bench"
	"verticadr/internal/core"
	"verticadr/internal/server"
	"verticadr/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:5433", "serve mode: listen address")
		dataDir     = flag.String("data", "", "serve mode: durable persistence under this directory (WAL + checkpoints); restarting with the same -data recovers state. Disables -demo seeding after the first run.")
		adminAddr   = flag.String("admin", "", "serve mode: admin HTTP listen address for /metrics, /statements, /traces/recent, /healthz and pprof (empty = disabled)")
		drainWait   = flag.Duration("drain", 10*time.Second, "serve mode: graceful-shutdown drain deadline for in-flight queries")
		demo        = flag.Bool("demo", true, "serve mode: preload the serve_pts table and serve_glm model")
		nodes       = flag.Int("nodes", 4, "database nodes")
		workers     = flag.Int("workers", 4, "Distributed R workers")
		maxConc     = flag.Int("max-concurrent", 8, "admission control: queries executing at once")
		maxQueue    = flag.Int("max-queue", 64, "admission control: bounded wait queue length")
		queueWait   = flag.Duration("queue-wait", 2*time.Second, "admission control: max slot wait before shedding")
		queryLimit  = flag.Duration("query-timeout", 0, "per-query execution deadline (0 = none)")
		runBench    = flag.Bool("bench", false, "run the serving load generator and exit")
		benchOut    = flag.String("out", "BENCH_PR5.json", "bench mode: output file")
		benchRows   = flag.Int("rows", 2048, "bench mode: prediction table rows")
		benchConc   = flag.Int("concurrency", 8, "bench mode: closed-loop client streams")
		benchWindow = flag.Duration("duration", 2*time.Second, "bench mode: per-phase window")
	)
	flag.Parse()

	if *runBench {
		if err := runServeBench(*benchOut, *benchRows, *benchConc, *benchWindow); err != nil {
			fmt.Fprintln(os.Stderr, "vdr-serve:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, *adminAddr, *dataDir, *drainWait, *demo, *nodes, *workers, server.Config{
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
		QueryTimeout:  *queryLimit,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-serve:", err)
		os.Exit(1)
	}
}

func serve(addr, adminAddr, dataDir string, drainWait time.Duration, demo bool, nodes, workers int, cfg server.Config) error {
	var (
		sess *core.Session
		err  error
	)
	switch {
	case dataDir != "":
		// Durable mode: recover whatever a previous run committed, then serve.
		// The demo fixture is only seeded into a fresh directory.
		sess, err = core.Start(core.Config{DBNodes: nodes, DRWorkers: workers, DataDir: dataDir, Durable: true})
		if err != nil {
			return err
		}
		if info := sess.DB.RecoveryInfo(); info != nil {
			fmt.Printf("vdr-serve: recovery: checkpoint lsn %d, replayed %d records / %d bytes in %v\n",
				info.CheckpointLSN, info.Replay.Records, info.Replay.Bytes, info.Replay.Elapsed)
			if info.Replay.Torn {
				fmt.Println("vdr-serve: recovery: torn final record discarded (crash mid-append)")
			}
		}
		if demo {
			if _, derr := sess.DB.TableDef(bench.ServeTable); derr != nil {
				if err := bench.SeedServeFixture(sess, 20000); err != nil {
					sess.Close()
					return err
				}
			} else {
				fmt.Println("vdr-serve: serving fixture recovered from previous run")
			}
		}
	case demo:
		sess, err = bench.ServeFixture(20000)
	default:
		sess, err = core.Start(core.Config{DBNodes: nodes, DRWorkers: workers})
	}
	if err != nil {
		return err
	}
	defer sess.Close()

	srv := server.New(sess, cfg)
	tcp, err := server.Listen(srv, addr)
	if err != nil {
		return err
	}
	defer tcp.Close()
	fmt.Printf("vdr-serve: listening on %s (max-concurrent=%d queue=%d)\n",
		tcp.Addr(), cfg.MaxConcurrent, cfg.MaxQueue)
	if demo {
		fmt.Printf("vdr-serve: try: %s\n", bench.ServePredictSQL)
	}

	var admin *http.Server
	if adminAddr != "" {
		admin = &http.Server{Addr: adminAddr, Handler: server.AdminHandler(srv)}
		go func() {
			fmt.Printf("vdr-serve: admin endpoint on http://%s (/metrics /statements /traces/recent /healthz /debug/pprof/)\n", adminAddr)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vdr-serve: admin:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: stop accepting and drain in-flight queries to the
	// deadline, mark the server closed so anything still queued fails fast,
	// then emit a final observability snapshot before the process exits.
	fmt.Printf("vdr-serve: shutting down (draining up to %v)\n", drainWait)
	if err := tcp.Shutdown(drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-serve: drain:", err)
	}
	srv.Close()
	if dataDir != "" {
		// A graceful exit leaves a fresh checkpoint behind, so the next start
		// replays (almost) nothing.
		if lsn, err := sess.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "vdr-serve: shutdown checkpoint:", err)
		} else {
			fmt.Printf("vdr-serve: shutdown checkpoint at lsn %d\n", lsn)
		}
	}
	if admin != nil {
		_ = admin.Close()
	}
	fmt.Fprintln(os.Stderr, "vdr-serve: final metrics")
	fmt.Fprint(os.Stderr, telemetry.Default().Dump())
	if snaps := srv.Statements().Snapshot(); len(snaps) > 0 {
		if js, err := json.MarshalIndent(snaps, "", "  "); err == nil {
			fmt.Fprintln(os.Stderr, "vdr-serve: statement statistics")
			fmt.Fprintln(os.Stderr, string(js))
		}
	}
	return nil
}

func runServeBench(out string, rows, concurrency int, window time.Duration) error {
	res, err := bench.RunServeBench(bench.ServeBenchConfig{
		Rows:        rows,
		Concurrency: concurrency,
		Duration:    window,
	})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve-bench: unprepared %.0f q/s, prepared+cached %.0f q/s (%.2fx) at concurrency %d\n",
		res.UnpreparedQPS, res.PreparedCachedQPS, res.Speedup, res.Concurrency)
	fmt.Printf("serve-bench: overload %d streams vs max-concurrent %d: ok=%d overloaded=%d other=%d\n",
		res.Overload.Streams, res.Overload.MaxConcurrent, res.Overload.OK, res.Overload.Overloaded, res.Overload.OtherErrors)
	fmt.Printf("serve-bench: wrote %s\n", out)
	if res.Speedup < 2 {
		return fmt.Errorf("prepared+cached speedup %.2fx below the 2x acceptance bar", res.Speedup)
	}
	if res.Overload.Overloaded == 0 {
		return fmt.Errorf("overload phase shed nothing — admission control did not engage")
	}
	if res.Overload.OtherErrors > 0 {
		return fmt.Errorf("overload phase saw %d non-overload errors", res.Overload.OtherErrors)
	}
	return nil
}
