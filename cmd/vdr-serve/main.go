// Command vdr-serve runs the concurrent query-serving layer (internal/server)
// over a fresh in-process session: the deployment the paper's in-database
// prediction (§5) implies — many clients scoring against deployed models at
// once — exposed on a TCP line protocol that shares the transfer plane's
// frame layout.
//
// Serve mode (default) listens on -addr; with -demo it first creates the
// serving fixture (table serve_pts, model serve_glm) so clients can issue
// prediction queries immediately.
//
// With -data DIR the server is durable: ingest is write-ahead-logged and
// fsync-acknowledged, startup recovers the previous run's state (checkpoint
// image + log replay), and a graceful shutdown writes a fresh checkpoint.
// The -demo fixture is seeded only into a fresh directory.
//
// Cluster mode: -cluster-peers lists every node's address (comma-separated)
// and -cluster-node says which entry this process is. The node opens its
// database with -cluster-shards segments (default: one per peer), serves the
// shard-level peer protocol, and fronts its own listener with a router, so a
// plain client connected to ANY node gets cluster-wide results ("every node
// is an initiator"). Tables segment across the shards with -cluster-replicas
// copies; reads fail over to a replica when a node dies.
//
//	vdr-serve -addr :5001 -cluster-peers :5001,:5002,:5003 -cluster-node 0 &
//	vdr-serve -addr :5002 -cluster-peers :5001,:5002,:5003 -cluster-node 1 &
//	vdr-serve -addr :5003 -cluster-peers :5001,:5002,:5003 -cluster-node 2 &
//
// Bench mode (-bench) runs the closed-loop load generator instead: the
// unprepared single-shot path vs. the prepared+cached path at -concurrency,
// then an overload phase against a deliberately tiny server, and writes the
// figures to -out (BENCH_PR5.json, `make serve-bench`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"verticadr/internal/bench"
	"verticadr/internal/cliflags"
	"verticadr/internal/cluster"
	"verticadr/internal/core"
	"verticadr/internal/server"
	"verticadr/internal/telemetry"
)

// clusterOpts carries the -cluster-* flags; Peers == "" means plain mode.
type clusterOpts struct {
	Peers    string
	Node     int
	Shards   int
	Replicas int
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:5433", "serve mode: listen address")
		dataDir     = cliflags.DataDir(flag.CommandLine)
		adminAddr   = flag.String("admin", "", "serve mode: admin HTTP listen address for /metrics, /statements, /traces/recent, /healthz and pprof (empty = disabled)")
		drainWait   = flag.Duration("drain", 10*time.Second, "serve mode: graceful-shutdown drain deadline for in-flight queries")
		demo        = flag.Bool("demo", true, "serve mode: preload the serve_pts table and serve_glm model")
		nodes       = cliflags.Nodes(flag.CommandLine, 4)
		clPeers     = flag.String("cluster-peers", "", "cluster mode: comma-separated addresses of every node (this one included)")
		clNode      = flag.Int("cluster-node", 0, "cluster mode: this node's index into -cluster-peers")
		clShards    = flag.Int("cluster-shards", 0, "cluster mode: table segments across the cluster (0 = one per peer)")
		clReplicas  = flag.Int("cluster-replicas", 0, "cluster mode: copies of each shard (0 = min(2, peers))")
		workers     = flag.Int("workers", 4, "Distributed R workers")
		maxConc     = flag.Int("max-concurrent", 8, "admission control: queries executing at once")
		maxQueue    = flag.Int("max-queue", 64, "admission control: bounded wait queue length")
		queueWait   = flag.Duration("queue-wait", 2*time.Second, "admission control: max slot wait before shedding")
		queryLimit  = flag.Duration("query-timeout", 0, "per-query execution deadline (0 = none)")
		runBench    = flag.Bool("bench", false, "run the serving load generator and exit")
		benchOut    = flag.String("out", "BENCH_PR5.json", "bench mode: output file")
		benchRows   = flag.Int("rows", 2048, "bench mode: prediction table rows")
		benchConc   = flag.Int("concurrency", 8, "bench mode: closed-loop client streams")
		benchWindow = flag.Duration("duration", 2*time.Second, "bench mode: per-phase window")
	)
	flag.Parse()

	if *runBench {
		if err := runServeBench(*benchOut, *benchRows, *benchConc, *benchWindow); err != nil {
			fmt.Fprintln(os.Stderr, "vdr-serve:", err)
			os.Exit(1)
		}
		return
	}
	cl := clusterOpts{Peers: *clPeers, Node: *clNode, Shards: *clShards, Replicas: *clReplicas}
	if err := serve(*addr, *adminAddr, *dataDir, *drainWait, *demo, *nodes, *workers, cl, server.Config{
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
		QueryTimeout:  *queryLimit,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-serve:", err)
		os.Exit(1)
	}
}

func serve(addr, adminAddr, dataDir string, drainWait time.Duration, demo bool, nodes, workers int, cl clusterOpts, cfg server.Config) error {
	var (
		sess *core.Session
		err  error
	)
	var topo cluster.Topology
	clustered := cl.Peers != ""
	if clustered {
		topo, err = cluster.Topology{
			Addrs:    strings.Split(cl.Peers, ","),
			Shards:   cl.Shards,
			Replicas: cl.Replicas,
		}.Normalize()
		if err != nil {
			return err
		}
		if cl.Node < 0 || cl.Node >= len(topo.Addrs) {
			return fmt.Errorf("vdr-serve: -cluster-node %d outside -cluster-peers", cl.Node)
		}
		// The local database's segment layout IS the cluster's shard layout:
		// open with one node per shard, and only this peer's shards fill.
		nodes = topo.Shards
		demo = false // fixtures are loaded through the router, not per node
	}
	switch {
	case dataDir != "":
		// Durable mode: recover whatever a previous run committed, then serve.
		// The demo fixture is only seeded into a fresh directory.
		sess, err = core.Start(core.Config{DBNodes: nodes, DRWorkers: workers, DataDir: dataDir, Durable: true})
		if err != nil {
			return err
		}
		if info := sess.DB.RecoveryInfo(); info != nil {
			fmt.Printf("vdr-serve: recovery: checkpoint lsn %d, replayed %d records / %d bytes in %v\n",
				info.CheckpointLSN, info.Replay.Records, info.Replay.Bytes, info.Replay.Elapsed)
			if info.Replay.Torn {
				fmt.Println("vdr-serve: recovery: torn final record discarded (crash mid-append)")
			}
		}
		if demo {
			if _, derr := sess.DB.TableDef(bench.ServeTable); derr != nil {
				if err := bench.SeedServeFixture(sess, 20000); err != nil {
					sess.Close()
					return err
				}
			} else {
				fmt.Println("vdr-serve: serving fixture recovered from previous run")
			}
		}
	case demo:
		sess, err = bench.ServeFixture(20000)
	default:
		sess, err = core.Start(core.Config{DBNodes: nodes, DRWorkers: workers})
	}
	if err != nil {
		return err
	}
	defer sess.Close()

	srv := server.New(sess, cfg)
	var (
		listenOpts []server.ListenOption
		adminOpts  []server.AdminOption
		router     *cluster.Router
	)
	if clustered {
		router, err = cluster.NewRouter(cluster.Config{
			Addrs:    topo.Addrs,
			Shards:   topo.Shards,
			Replicas: topo.Replicas,
		})
		if err != nil {
			return err
		}
		defer router.Close()
		peer := cluster.NewPeer(srv, topo, cl.Node)
		// Front the listener with the router (any node answers any query
		// cluster-wide) and serve the shard-level peer ops underneath it.
		listenOpts = append(listenOpts,
			server.WithFrontend(router),
			server.WithExtension(cluster.NodeExtension(peer, router)))
		adminOpts = append(adminOpts,
			server.WithClusterState(func() any { return router.Health() }))
	} else {
		// Plain mode still serves the peer ops (single-node topology), so the
		// unified client's Load/TableDef work against any server.
		topo := cluster.Topology{Addrs: []string{addr}, Shards: nodes, Replicas: 1}
		if topo, err = topo.Normalize(); err != nil {
			return err
		}
		listenOpts = append(listenOpts,
			server.WithExtension(cluster.NewPeer(srv, topo, 0)))
	}
	tcp, err := server.Listen(srv, addr, listenOpts...)
	if err != nil {
		return err
	}
	defer tcp.Close()
	if clustered {
		fmt.Printf("vdr-serve: cluster node %d/%d listening on %s (shards=%d replicas=%d, owns %v)\n",
			cl.Node, len(topo.Addrs), tcp.Addr(), topo.Shards, topo.Replicas, topo.OwnedShards(cl.Node))
	} else {
		fmt.Printf("vdr-serve: listening on %s (max-concurrent=%d queue=%d)\n",
			tcp.Addr(), cfg.MaxConcurrent, cfg.MaxQueue)
	}
	if demo {
		fmt.Printf("vdr-serve: try: %s\n", bench.ServePredictSQL)
	}

	var admin *http.Server
	if adminAddr != "" {
		admin = &http.Server{Addr: adminAddr, Handler: server.AdminHandler(srv, adminOpts...)}
		go func() {
			fmt.Printf("vdr-serve: admin endpoint on http://%s (/metrics /statements /traces/recent /healthz /debug/pprof/)\n", adminAddr)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vdr-serve: admin:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: stop accepting and drain in-flight queries to the
	// deadline, mark the server closed so anything still queued fails fast,
	// then emit a final observability snapshot before the process exits.
	fmt.Printf("vdr-serve: shutting down (draining up to %v)\n", drainWait)
	if err := tcp.Shutdown(drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-serve: drain:", err)
	}
	srv.Close()
	if dataDir != "" {
		// A graceful exit leaves a fresh checkpoint behind, so the next start
		// replays (almost) nothing.
		if lsn, err := sess.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "vdr-serve: shutdown checkpoint:", err)
		} else {
			fmt.Printf("vdr-serve: shutdown checkpoint at lsn %d\n", lsn)
		}
	}
	if admin != nil {
		_ = admin.Close()
	}
	fmt.Fprintln(os.Stderr, "vdr-serve: final metrics")
	fmt.Fprint(os.Stderr, telemetry.Default().Dump())
	if snaps := srv.Statements().Snapshot(); len(snaps) > 0 {
		if js, err := json.MarshalIndent(snaps, "", "  "); err == nil {
			fmt.Fprintln(os.Stderr, "vdr-serve: statement statistics")
			fmt.Fprintln(os.Stderr, string(js))
		}
	}
	return nil
}

func runServeBench(out string, rows, concurrency int, window time.Duration) error {
	res, err := bench.RunServeBench(bench.ServeBenchConfig{
		Rows:        rows,
		Concurrency: concurrency,
		Duration:    window,
	})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve-bench: unprepared %.0f q/s, prepared+cached %.0f q/s (%.2fx) at concurrency %d\n",
		res.UnpreparedQPS, res.PreparedCachedQPS, res.Speedup, res.Concurrency)
	fmt.Printf("serve-bench: overload %d streams vs max-concurrent %d: ok=%d overloaded=%d other=%d\n",
		res.Overload.Streams, res.Overload.MaxConcurrent, res.Overload.OK, res.Overload.Overloaded, res.Overload.OtherErrors)
	fmt.Printf("serve-bench: wrote %s\n", out)
	if res.Speedup < 2 {
		return fmt.Errorf("prepared+cached speedup %.2fx below the 2x acceptance bar", res.Speedup)
	}
	if res.Overload.Overloaded == 0 {
		return fmt.Errorf("overload phase shed nothing — admission control did not engage")
	}
	if res.Overload.OtherErrors > 0 {
		return fmt.Errorf("overload phase saw %d non-overload errors", res.Overload.OtherErrors)
	}
	return nil
}
