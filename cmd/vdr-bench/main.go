// vdr-bench regenerates the paper's evaluation: every figure's series is
// printed as an aligned table, either all at once or one experiment at a
// time. Simulated figures run the calibrated discrete-event model at the
// paper's cluster scale; -real additionally executes the reduced-scale
// measured experiments against the live engines.
//
// Usage:
//
//	vdr-bench                      # print every simulated figure
//	vdr-bench -experiment fig13    # one figure
//	vdr-bench -real                # also run the real-engine experiments
//	vdr-bench -metrics out.json    # dump the telemetry registry afterwards
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"verticadr/internal/bench"
	"verticadr/internal/cliflags"
	"verticadr/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "", "single experiment id (fig1, fig12..fig21, tab1, fig10)")
	real := flag.Bool("real", false, "also run reduced-scale measured experiments on the live engines")
	metrics := flag.String("metrics", "", "write the telemetry registry as JSON to this file after the run")
	chaos := cliflags.ChaosFlags(flag.CommandLine)
	par := cliflags.Parallelism(flag.CommandLine)
	flag.Parse()

	cliflags.ApplyParallelism(*par)
	chaos.Arm()

	c := bench.DefaultCalib()
	figs := bench.AllFigures(c)
	byID := map[string]*bench.Figure{}
	for _, f := range figs {
		byID[f.ID] = f
	}

	switch {
	case *experiment == "":
		for _, f := range figs {
			fmt.Println(f)
		}
	case *experiment == "tab1" || *experiment == "fig10":
		runChecks(*experiment)
	default:
		f, ok := byID[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: fig1 fig12..fig21 tab1 fig10\n", *experiment)
			os.Exit(2)
		}
		fmt.Println(f)
	}

	if *real {
		runReal()
	}

	if rep := chaos.Report(); rep != "" {
		fmt.Printf("\n%s\n", rep)
	}

	if *metrics != "" {
		data, err := telemetry.Default().SnapshotJSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*metrics, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry registry written to %s\n", *metrics)
	}
}

func runChecks(which string) {
	env, err := bench.NewEnv(3, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	switch which {
	case "tab1":
		if err := env.Table1Check(); err != nil {
			log.Fatalf("Table 1 check FAILED: %v", err)
		}
		fmt.Println("Table 1 constructs verified: darray/dframe/dlist(npartitions=), partitionsize, clone")
	case "fig10":
		if err := env.Fig10Check(); err != nil {
			log.Fatalf("Fig 10 check FAILED: %v", err)
		}
		fmt.Println("Fig 10 verified: R_Models catalog matches (model | owner | type | size | description)")
	}
}

func runReal() {
	fmt.Println("== real-engine measurements (reduced scale, this machine) ==")
	env, err := bench.NewEnv(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	if err := env.LoadFeatureTable("bench_t", 60000, 6, 1); err != nil {
		log.Fatal(err)
	}
	tr, err := env.RealTransferComparison("bench_t", 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer %d rows: ODBC %v, VFT %v (%.1fx)\n",
		tr.Rows, tr.ODBC, tr.VFT, tr.ODBC.Seconds()/tr.VFT.Seconds())

	ch, err := env.RunChaosTransfer("bench_t", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos transfer %d rows: clean %v, under faults %v (%d injected, %d retransmits, %d dups absorbed)\n",
		ch.Rows, ch.CleanTime, ch.ChaosTime, ch.Injected, ch.Retransmits, ch.DupChunks)

	km, err := env.RunRealKmeansCompare(20000, 8, 5, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means (20k x 8, K=5): DR obj %.1f in %v; Spark obj %.1f in %v\n",
		km.DRObjective, km.DRTime, km.SparkObjective, km.SparkTime)

	sc, err := env.RunSolverComparison(20000, 6, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solvers (20k x 6): Newton-Raphson %v vs QR %v, max coefficient diff %.2e\n",
		sc.NRTime, sc.QRTime, sc.MaxCoefDiff)

	ab, err := env.RunTransferPolicyAblation(40000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy ablation on fully skewed table: locality parts %v, uniform parts %v\n",
		ab.LocalitySizes, ab.UniformSizes)

	if err := env.Table1Check(); err != nil {
		log.Fatalf("Table 1 check FAILED: %v", err)
	}
	if err := env.Fig10Check(); err != nil {
		log.Fatalf("Fig 10 check FAILED: %v", err)
	}
	fmt.Println("Table 1 and Fig 10 checks passed")
}
