// Command vdr-walbench measures the durability path (`make wal-bench`,
// BENCH_PR7.json): COPY commit throughput against a durable database at
// increasing client concurrency — the group-commit effect, where N concurrent
// committers share one fsync — and the recovery replay rate over the log
// those commits produced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"verticadr/internal/catalog"
	"verticadr/internal/colstore"
	"verticadr/internal/vertica"
)

type commitFigure struct {
	Concurrency   int     `json:"concurrency"`
	Commits       int64   `json:"commits"`
	Seconds       float64 `json:"seconds"`
	CommitsPerSec float64 `json:"commits_per_s"`
	// Speedup over the single-stream rate: > 1 means fsyncs were shared.
	VsSerial float64 `json:"vs_serial"`
}

type result struct {
	RowsPerCommit  int            `json:"rows_per_commit"`
	Window         string         `json:"window"`
	Commits        []commitFigure `json:"group_commit"`
	ReplayRecords  int            `json:"replay_records"`
	ReplayBytes    int            `json:"replay_bytes"`
	ReplaySeconds  float64        `json:"replay_seconds"`
	ReplayMBPerSec float64        `json:"replay_mb_per_s"`
}

var schema = colstore.Schema{
	{Name: "id", Type: colstore.TypeInt64},
	{Name: "x", Type: colstore.TypeFloat64},
}

func makeBatch(rows int) *colstore.Batch {
	b := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		if err := b.AppendRow(int64(i), float64(i)*0.25); err != nil {
			panic(err)
		}
	}
	return b
}

// commitRate runs `conc` closed-loop committers against one durable table for
// the window and returns acknowledged commits.
func commitRate(dir string, conc, rowsPer int, window time.Duration) (commitFigure, error) {
	db, err := vertica.Open(vertica.Config{Nodes: 4, Durable: true, DataDir: dir})
	if err != nil {
		return commitFigure{}, err
	}
	defer db.Close()
	if err := db.CreateTable(&catalog.TableDef{
		Name:   "pts",
		Schema: schema,
		Seg:    catalog.Segmentation{Kind: catalog.SegHash, Column: "id"},
	}); err != nil {
		return commitFigure{}, err
	}
	var (
		commits atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		first   error
		errMu   sync.Mutex
	)
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := makeBatch(rowsPer)
			for !stop.Load() {
				if err := db.Load("pts", batch); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
				commits.Add(1)
			}
		}()
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if first != nil {
		return commitFigure{}, first
	}
	n := commits.Load()
	return commitFigure{
		Concurrency:   conc,
		Commits:       n,
		Seconds:       elapsed.Seconds(),
		CommitsPerSec: float64(n) / elapsed.Seconds(),
	}, nil
}

// replayRate reopens the largest log directory produced above and reports the
// redo pass throughput.
func replayRate(dir string) (records, bytes int, seconds float64, err error) {
	db, err := vertica.Open(vertica.Config{Nodes: 4, Durable: true, DataDir: dir})
	if err != nil {
		return 0, 0, 0, err
	}
	defer db.Close()
	info := db.RecoveryInfo()
	return int(info.Replay.Records), int(info.Replay.Bytes), info.Replay.Elapsed.Seconds(), nil
}

func run(out string, rowsPer int, window time.Duration) error {
	root, err := os.MkdirTemp("", "vdr-walbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	res := result{RowsPerCommit: rowsPer, Window: window.String()}
	var replayDir string
	for _, conc := range []int{1, 8, 64} {
		dir := filepath.Join(root, fmt.Sprintf("c%d", conc))
		fig, err := commitRate(dir, conc, rowsPer, window)
		if err != nil {
			return err
		}
		if len(res.Commits) > 0 {
			fig.VsSerial = fig.CommitsPerSec / res.Commits[0].CommitsPerSec
		} else {
			fig.VsSerial = 1
		}
		res.Commits = append(res.Commits, fig)
		replayDir = dir
		fmt.Printf("wal-bench: concurrency %2d: %6.0f commits/s (%.2fx vs serial)\n",
			fig.Concurrency, fig.CommitsPerSec, fig.VsSerial)
	}

	res.ReplayRecords, res.ReplayBytes, res.ReplaySeconds, err = replayRate(replayDir)
	if err != nil {
		return err
	}
	if res.ReplaySeconds > 0 {
		res.ReplayMBPerSec = float64(res.ReplayBytes) / (1 << 20) / res.ReplaySeconds
	}
	fmt.Printf("wal-bench: recovery replayed %d records / %.1f MB at %.0f MB/s\n",
		res.ReplayRecords, float64(res.ReplayBytes)/(1<<20), res.ReplayMBPerSec)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wal-bench: wrote %s\n", out)
	// Acceptance: group commit must actually batch — concurrent committers
	// may not be slower than the serial stream.
	last := res.Commits[len(res.Commits)-1]
	if last.VsSerial < 1 {
		return fmt.Errorf("group commit regressed: %d streams at %.2fx of serial", last.Concurrency, last.VsSerial)
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_PR7.json", "output file")
	rows := flag.Int("rows", 64, "rows per COPY commit")
	window := flag.Duration("duration", 2*time.Second, "measurement window per concurrency level")
	flag.Parse()
	if err := run(*out, *rows, *window); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-walbench:", err)
		os.Exit(1)
	}
}
