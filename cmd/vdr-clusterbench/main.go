// Command vdr-clusterbench measures the PR 10 multi-node serving layer and
// writes the figures to a JSON file (BENCH_PR10.json by default, `make
// cluster-bench`).
//
// Measured (in-process peers over real loopback TCP, honest numbers for
// this host): single-process SELECT/PREDICT throughput, routed throughput
// through a cluster router at 1/2/3 peers, the latency of the first read
// after a replica is killed (failover cost), and how long the health
// prober takes to restore a restarted peer.
//
// Simulated (the calibrated discrete-event model, like the paper figures):
// routed PREDICT throughput at 1/2/3 nodes where every node has its own
// CPU — the deployment the cluster layer exists for, which a single-CPU
// host cannot exhibit. Per-row cost and per-shard RPC overhead are
// calibrated from the measurements above. The command exits non-zero if
// the simulated 1→3-node PREDICT scaling falls below 1.6x, or if routed
// results ever diverge from the single-process engine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"time"

	"verticadr/internal/algos"
	"verticadr/internal/cliflags"
	"verticadr/internal/cluster"
	"verticadr/internal/colstore"
	"verticadr/internal/core"
	"verticadr/internal/server"
	"verticadr/internal/simnet"
)

const (
	shards    = 3
	benchRows = 24000
)

var (
	selectSQL  = `SELECT a, count(*) AS n, sum(x) AS sx, min(y) AS my FROM t GROUP BY a ORDER BY a`
	predictSQL = `SELECT GlmPredict(x, y USING PARAMETERS model='m') OVER (PARTITION BEST) FROM t`
)

type throughput struct {
	Queries   int     `json:"queries"`
	QPS       float64 `json:"qps"`
	RowsPerS  float64 `json:"rows_per_s,omitempty"`
	MedianMS  float64 `json:"median_ms"`
	WallMS    float64 `json:"wall_ms"`
	ShardRows int     `json:"table_rows"`
}

type report struct {
	Rows     int `json:"rows"`
	Shards   int `json:"shards"`
	Measured struct {
		Local     map[string]throughput `json:"local"`     // single-process session
		Routed    map[string]throughput `json:"routed"`    // "select@N"/"predict@N"
		Failover  failoverFigure        `json:"failover"`  //
		Agreement string                `json:"agreement"` // routed vs local check
	} `json:"measured"`
	Simulated simFigure `json:"simulated"`
	Gates     gates     `json:"gates"`
}

type failoverFigure struct {
	SteadyMedianMS   float64 `json:"steady_median_ms"`
	FirstAfterKillMS float64 `json:"first_after_kill_ms"`
	ProbeRestoreMS   float64 `json:"probe_restore_ms"`
	FailedQueries    int     `json:"failed_queries"`
}

type simFigure struct {
	PerRowNS      float64            `json:"calibrated_per_row_ns"`
	RPCOverheadUS float64            `json:"calibrated_rpc_overhead_us"`
	QPS           map[string]float64 `json:"predict_qps_by_nodes"`
	Scaling13     float64            `json:"predict_scaling_1_to_3"`
}

type gates struct {
	SimScaling13Min float64 `json:"sim_scaling_1_to_3_min"`
	Pass            bool    `json:"pass"`
}

// node is one in-process cluster member.
type node struct {
	sess   *core.Session
	router *cluster.Router
	tcp    *server.TCPServer
	addr   string
}

func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lis := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lis[i], addrs[i] = l, l.Addr().String()
	}
	for _, l := range lis {
		_ = l.Close()
	}
	return addrs, nil
}

func sessionConfig() core.Config {
	return core.Config{DBNodes: shards, DRWorkers: 2, InstancesPerWorker: 1, BlockRows: 4096}
}

func fill(load func(*colstore.Batch) error) error {
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeInt64},
		{Name: "x", Type: colstore.TypeFloat64},
		{Name: "y", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatchCap(schema, benchRows)
	for i := 0; i < benchRows; i++ {
		if err := b.AppendRow(int64(i), int64(i%13), float64(i%201)/2, float64(i%157)/4); err != nil {
			return err
		}
	}
	return load(b)
}

const ddl = `CREATE TABLE t (id INTEGER, a INTEGER, x FLOAT, y FLOAT) SEGMENTED BY HASH(id)`

var model = &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{0.5, 1.25, -0.75}, Converged: true}

// startNodes brings up n peers serving a fixed 3-shard topology.
func startNodes(n int) ([]*node, func(), error) {
	addrs, err := freeAddrs(n)
	if err != nil {
		return nil, nil, err
	}
	topo, err := cluster.Topology{Addrs: addrs, Shards: shards, Replicas: min(2, n)}.Normalize()
	if err != nil {
		return nil, nil, err
	}
	var nodes []*node
	var closers []func()
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for i := 0; i < n; i++ {
		sess, err := core.Start(sessionConfig())
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		closers = append(closers, sess.Close)
		srv := server.New(sess, server.Config{MaxConcurrent: 8, MaxQueue: 64})
		router, err := cluster.NewRouter(cluster.Config{
			Addrs: addrs, Shards: topo.Shards, Replicas: topo.Replicas,
			ProbeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		closers = append(closers, router.Close)
		peer := cluster.NewPeer(srv, topo, i)
		tcp, err := server.Listen(srv, addrs[i],
			server.WithFrontend(router),
			server.WithExtension(cluster.NodeExtension(peer, router)))
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		t := tcp
		closers = append(closers, func() { _ = t.Close() })
		if err := sess.DeployModel("m", "bench", "cluster bench model", model); err != nil {
			closeAll()
			return nil, nil, err
		}
		nodes = append(nodes, &node{sess: sess, router: router, tcp: tcp, addr: addrs[i]})
	}
	return nodes, closeAll, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// measure runs fn queries times and folds wall clock + per-query latency.
func measure(queries, tableRows int, fn func() (int, error)) (throughput, error) {
	lat := make([]float64, 0, queries)
	rows := 0
	start := time.Now()
	for i := 0; i < queries; i++ {
		q0 := time.Now()
		n, err := fn()
		if err != nil {
			return throughput{}, err
		}
		rows += n
		lat = append(lat, float64(time.Since(q0).Microseconds())/1000)
	}
	wall := time.Since(start)
	sort.Float64s(lat)
	tp := throughput{
		Queries:   queries,
		QPS:       float64(queries) / wall.Seconds(),
		RowsPerS:  float64(rows) / wall.Seconds(),
		MedianMS:  lat[len(lat)/2],
		WallMS:    float64(wall.Milliseconds()),
		ShardRows: tableRows,
	}
	return tp, nil
}

// simPredictQPS runs the calibrated fan-out model: nodes CPUs (one
// resource each), clients closed-loop routed PREDICTs, each query forking
// one shard task per node-resident shard (rows/nodes rows of work at
// perRowSec each) plus rpcSec of router overhead per shard call.
func simPredictQPS(nodes, clients, queries, rows int, perRowSec, rpcSec float64) float64 {
	s := simnet.New()
	cpu := make([]*simnet.Resource, nodes)
	for i := range cpu {
		cpu[i] = s.NewResource(fmt.Sprintf("node%d", i), 1, 1/perRowSec)
	}
	done := 0
	for c := 0; c < clients; c++ {
		c := c
		s.Go(fmt.Sprintf("client%d", c), func(p *simnet.Proc) {
			for q := 0; q < queries/clients; q++ {
				gate := s.NewGate(nodes)
				for sh := 0; sh < nodes; sh++ {
					sh := sh
					s.Go(fmt.Sprintf("c%dq%ds%d", c, q, sh), func(sp *simnet.Proc) {
						sp.Sleep(rpcSec)
						cpu[sh].Use(sp, float64(rows/nodes))
						gate.Done()
					})
				}
				gate.Wait(p)
			}
			done += queries / clients
		})
	}
	elapsed := s.Run()
	return float64(done) / elapsed
}

func main() {
	out := cliflags.BenchOut(flag.CommandLine, "BENCH_PR10.json")
	par := cliflags.Parallelism(flag.CommandLine)
	flag.Parse()
	cliflags.ApplyParallelism(*par)
	ctx := context.Background()

	var rep report
	rep.Rows, rep.Shards = benchRows, shards
	rep.Measured.Local = map[string]throughput{}
	rep.Measured.Routed = map[string]throughput{}

	// -- local single-process reference --
	base, err := core.Start(sessionConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer base.Close()
	if err := base.Exec(ddl); err != nil {
		log.Fatal(err)
	}
	if err := fill(func(b *colstore.Batch) error { return base.Load("t", b) }); err != nil {
		log.Fatal(err)
	}
	if err := base.DeployModel("m", "bench", "cluster bench model", model); err != nil {
		log.Fatal(err)
	}
	for name, sql := range map[string]string{"select": selectSQL, "predict": predictSQL} {
		tp, err := measure(30, benchRows, func() (int, error) {
			res, err := base.QueryContext(ctx, sql)
			if err != nil {
				return 0, err
			}
			return res.Batch.Len(), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		rep.Measured.Local[name] = tp
		fmt.Printf("local   %-7s  %7.1f q/s  %9.0f rows/s  median %6.2f ms\n", name, tp.QPS, tp.RowsPerS, tp.MedianMS)
	}
	refSelect, err := base.QueryContext(ctx, selectSQL)
	if err != nil {
		log.Fatal(err)
	}

	// -- routed at 1/2/3 peers over real TCP --
	agreement := "ok"
	for _, n := range []int{1, 2, 3} {
		nodes, closeAll, err := startNodes(n)
		if err != nil {
			log.Fatal(err)
		}
		r := nodes[0].router
		if _, err := r.Query(ctx, ddl); err != nil {
			log.Fatal(err)
		}
		if err := fill(func(b *colstore.Batch) error { return r.Load(ctx, "t", b) }); err != nil {
			log.Fatal(err)
		}
		// Routed results must match the single-process engine exactly.
		got, err := r.Query(ctx, selectSQL)
		if err != nil {
			log.Fatal(err)
		}
		if fmt.Sprint(got.Rows()) != fmt.Sprint(refSelect.Rows()) {
			agreement = fmt.Sprintf("DIVERGED at %d nodes", n)
		}
		for name, sql := range map[string]string{"select": selectSQL, "predict": predictSQL} {
			tp, err := measure(30, benchRows, func() (int, error) {
				res, err := r.Query(ctx, sql)
				if err != nil {
					return 0, err
				}
				return res.Batch.Len(), nil
			})
			if err != nil {
				log.Fatal(err)
			}
			rep.Measured.Routed[fmt.Sprintf("%s@%d", name, n)] = tp
			fmt.Printf("routed  %-7s  %7.1f q/s  %9.0f rows/s  median %6.2f ms  (%d nodes)\n",
				name, tp.QPS, tp.RowsPerS, tp.MedianMS, n)
		}
		if n == 3 {
			rep.Measured.Failover = failoverBench(ctx, nodes)
		}
		closeAll()
	}
	rep.Measured.Agreement = agreement

	// -- calibrated simulation: every node has its own CPU --
	localPredict := rep.Measured.Local["predict"]
	routed1 := rep.Measured.Routed["predict@1"]
	perRowSec := (localPredict.MedianMS / 1000) / float64(benchRows)
	rpcSec := (routed1.MedianMS - localPredict.MedianMS) / 1000 / shards
	if rpcSec < 50e-6 {
		rpcSec = 50e-6 // floor: a loopback RPC is never free
	}
	rep.Simulated.PerRowNS = perRowSec * 1e9
	rep.Simulated.RPCOverheadUS = rpcSec * 1e6
	rep.Simulated.QPS = map[string]float64{}
	for _, n := range []int{1, 2, 3} {
		qps := simPredictQPS(n, 4, 400, benchRows, perRowSec, rpcSec)
		rep.Simulated.QPS[fmt.Sprint(n)] = qps
		fmt.Printf("sim     predict  %7.1f q/s  (%d nodes, own CPU each)\n", qps, n)
	}
	rep.Simulated.Scaling13 = rep.Simulated.QPS["3"] / rep.Simulated.QPS["1"]

	rep.Gates.SimScaling13Min = 1.6
	rep.Gates.Pass = rep.Simulated.Scaling13 >= rep.Gates.SimScaling13Min && agreement == "ok"
	fmt.Printf("predict scaling 1→3 nodes: %.2fx (gate ≥ %.1fx), agreement: %s\n",
		rep.Simulated.Scaling13, rep.Gates.SimScaling13Min, agreement)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figures written to %s\n", *out)
	if !rep.Gates.Pass {
		log.Fatal("cluster bench gates FAILED")
	}
}

// failoverBench measures the read path across a replica kill on a 3-node
// cluster: steady-state median, the first read after the kill (the
// failover penalty: dead connections detected, shard retried on the
// replica), and the prober's restore time once the peer returns.
func failoverBench(ctx context.Context, nodes []*node) failoverFigure {
	var fig failoverFigure
	r := nodes[0].router
	var steady []float64
	for i := 0; i < 20; i++ {
		q0 := time.Now()
		if _, err := r.Query(ctx, selectSQL); err != nil {
			fig.FailedQueries++
		}
		steady = append(steady, float64(time.Since(q0).Microseconds())/1000)
	}
	sort.Float64s(steady)
	fig.SteadyMedianMS = steady[len(steady)/2]

	victim := nodes[2]
	_ = victim.tcp.Close()
	q0 := time.Now()
	if _, err := r.Query(ctx, selectSQL); err != nil {
		fig.FailedQueries++
	}
	fig.FirstAfterKillMS = float64(time.Since(q0).Microseconds()) / 1000

	// Bring the peer back and time the prober's restore.
	topo := r.Topology()
	srv := server.New(victim.sess, server.Config{MaxConcurrent: 8, MaxQueue: 64})
	peer := cluster.NewPeer(srv, topo, 2)
	tcp, err := server.Listen(srv, victim.addr,
		server.WithFrontend(victim.router),
		server.WithExtension(cluster.NodeExtension(peer, victim.router)))
	if err != nil {
		fig.ProbeRestoreMS = -1
		return fig
	}
	defer func() { _ = tcp.Close() }()
	r0 := time.Now()
	for {
		if h := r.Health(); h[2].Up {
			break
		}
		if time.Since(r0) > 5*time.Second {
			fig.ProbeRestoreMS = -1
			return fig
		}
		time.Sleep(2 * time.Millisecond)
	}
	fig.ProbeRestoreMS = float64(time.Since(r0).Microseconds()) / 1000
	fmt.Printf("failover: steady %.2f ms, first-after-kill %.2f ms, probe restore %.1f ms, failed queries %d\n",
		fig.SteadyMedianMS, fig.FirstAfterKillMS, fig.ProbeRestoreMS, fig.FailedQueries)
	return fig
}
