// Command vdr-microbench runs the PR 4 transfer/prediction microbenchmarks
// through testing.Benchmark and writes the figures to a JSON file
// (BENCH_PR4.json by default, `make bench`). It covers the pooled pipelined
// transfer path (vft.Load, chunk encode/decode) and the vectorized
// in-database prediction path (GlmPredict / KmeansPredict over SQL).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/dr"
	"verticadr/internal/models"
	"verticadr/internal/vertica"
	"verticadr/internal/vft"
)

type figure struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RowsPerSec  float64 `json:"rows_per_s,omitempty"`
}

func toFigure(name string, r testing.BenchmarkResult) figure {
	return figure{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		RowsPerSec:  r.Extra["rows/s"],
	}
}

func fillTable(db *vertica.DB, name string, rows int) error {
	if err := db.Exec(fmt.Sprintf(
		`CREATE TABLE %s (id INTEGER, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`, name)); err != nil {
		return err
	}
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	b := colstore.NewBatch(schema)
	for i := 0; i < rows; i++ {
		if err := b.AppendRow(int64(i), float64(i)*0.5, float64(i)*2); err != nil {
			return err
		}
	}
	return db.Load(name, b)
}

func benchLoad(rows int) (testing.BenchmarkResult, error) {
	db, err := vertica.Open(vertica.Config{Nodes: 4, BlockRows: 2048, UDFInstancesPerNode: 2})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	c, err := dr.Start(dr.Config{Workers: 4, InstancesPerWorker: 4})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer c.Shutdown()
	hub := vft.NewHub()
	if err := vft.Register(db, hub); err != nil {
		return testing.BenchmarkResult{}, err
	}
	if err := fillTable(db, "bt", rows); err != nil {
		return testing.BenchmarkResult{}, err
	}
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame, _, err := vft.Load(db, c, hub, "bt", []string{"id", "a", "b"}, vft.PolicyLocality, 2048)
			if err != nil {
				failed = err
				b.FailNow()
			}
			if frame.Rows() != rows {
				failed = fmt.Errorf("row loss: %d of %d", frame.Rows(), rows)
				b.FailNow()
			}
		}
		b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	return r, failed
}

func benchChunkCodec() (enc, dec testing.BenchmarkResult, err error) {
	schema := colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	}
	batch := colstore.NewBatch(schema)
	for i := 0; i < 2048; i++ {
		if e := batch.AppendRow(int64(i), float64(i)*0.5, float64(i)*2); e != nil {
			return enc, dec, e
		}
	}
	msg, err := vft.EncodeChunk(batch)
	if err != nil {
		return enc, dec, err
	}
	enc = testing.Benchmark(func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, e := vft.EncodeChunkInto(buf[:0], batch)
			if e != nil {
				b.FailNow()
			}
			buf = out
		}
	})
	dec = testing.Benchmark(func(b *testing.B) {
		dst := colstore.NewBatch(schema)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst.Reset()
			if e := vft.DecodeChunkInto(dst, msg); e != nil {
				b.FailNow()
			}
		}
	})
	return enc, dec, nil
}

func benchPredict(rows int) (glm, km testing.BenchmarkResult, err error) {
	db, err := vertica.Open(vertica.Config{Nodes: 4, BlockRows: 2048, UDFInstancesPerNode: 2})
	if err != nil {
		return glm, km, err
	}
	mgr, err := models.NewManager(db)
	if err != nil {
		return glm, km, err
	}
	if err = fillTable(db, "bp", rows); err != nil {
		return glm, km, err
	}
	if err = mgr.Deploy("m", "bench", "", &algos.GLMModel{
		Family: algos.Gaussian, Coefficients: []float64{1, 2, -0.5, 0.25},
	}); err != nil {
		return glm, km, err
	}
	if err = mgr.Deploy("km", "bench", "", &algos.KmeansModel{
		K: 2, Centers: [][]float64{{0, 0, 0}, {500, -1000, 250}},
	}); err != nil {
		return glm, km, err
	}
	run := func(q string) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, e := db.Query(q)
				if e != nil {
					err = e
					b.FailNow()
				}
				if res.Len() != rows {
					err = fmt.Errorf("row loss: %d of %d", res.Len(), rows)
					b.FailNow()
				}
			}
			b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
	glm = run(`SELECT GlmPredict(id, a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM bp`)
	if err != nil {
		return glm, km, err
	}
	km = run(`SELECT KmeansPredict(id, a, b USING PARAMETERS model='km') OVER (PARTITION BEST) FROM bp`)
	return glm, km, err
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "output JSON path")
	rows := flag.Int("rows", 50_000, "table size for the transfer benchmark")
	predRows := flag.Int("pred-rows", 100_000, "table size for the prediction benchmarks")
	flag.Parse()

	var figures []figure
	add := func(name string, r testing.BenchmarkResult, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdr-microbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		figures = append(figures, toFigure(name, r))
		fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op",
			name, float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
		if rs := r.Extra["rows/s"]; rs > 0 {
			fmt.Printf(" %14.0f rows/s", rs)
		}
		fmt.Println()
	}

	r, err := benchLoad(*rows)
	add("vft.Load/50k-rows", r, err)
	enc, dec, err := benchChunkCodec()
	add("vft.EncodeChunk/2048-rows", enc, err)
	add("vft.DecodeChunk/2048-rows", dec, nil)
	glm, km, err := benchPredict(*predRows)
	add("sql.GlmPredict/100k-rows", glm, err)
	add("sql.KmeansPredict/100k-rows", km, nil)

	data, err := json.MarshalIndent(map[string]any{"benchmarks": figures}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-microbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-microbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
