// vdr-sql is an interactive SQL shell against an in-process cluster: it
// starts a database + Distributed R session, seeds an optional demo table,
// and executes statements from stdin. The prediction UDFs and R_Models are
// installed, so the full Figure 3 SQL surface is available.
//
// Usage:
//
//	vdr-sql [-nodes 4] [-demo] [-data DIR]
//	> SELECT count(*) FROM demo;
//	> PROFILE SELECT count(*) FROM demo;           -- per-operator rows + timings
//	> EXPLAIN SELECT count(*) FROM demo;           -- physical plan, est vs actual rows
//	> EXPLAIN (FORMAT JSON) SELECT ...;            -- same plan as a JSON document
//	> \explain                                     -- explain every SELECT
//	> \profile                                     -- profile every SELECT
//	> \metrics                                     -- dump the telemetry registry
//	> \statements                                  -- per-statement statistics (calls, errors, p50/p95/p99)
//	> \recover                                     -- what startup recovery did (checkpoint + log replay)
//	> \checkpoint                                  -- materialize a checkpoint and truncate the log
//
// With -data DIR the session is durable: every commit is write-ahead-logged
// and fsynced before it is acknowledged, and restarting vdr-sql with the same
// -data recovers the previous state (ARIES-style: checkpoint image + redo).
//
//	> SELECT GlmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM demo;
//
// Statements run through the serving layer (plan cache + statement
// statistics), so repeated queries skip parsing and \statements accumulates
// the pg_stat_statements-style view.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"verticadr"
	"verticadr/internal/cliflags"
	"verticadr/internal/telemetry"
)

func main() {
	nodes := cliflags.Nodes(flag.CommandLine, 4)
	data := cliflags.DataDir(flag.CommandLine)
	demo := flag.Bool("demo", false, "create and fill a demo table plus a deployed model")
	connect := flag.String("connect", "", "comma-separated vdr-serve addresses: run as a remote shell against a (clustered) server instead of in-process")
	chaos := cliflags.ChaosFlags(flag.CommandLine)
	par := cliflags.Parallelism(flag.CommandLine)
	flag.Parse()

	if chaos.Arm() {
		fmt.Println("\\metrics shows faults_injected_total")
	}

	if *connect != "" {
		if err := remoteShell(*connect); err != nil {
			log.Fatal(err)
		}
		return
	}

	s, err := verticadr.Start(verticadr.Config{DBNodes: *nodes, Parallelism: *par, DataDir: *data, Durable: *data != ""})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("connected: %d-node database, %d Distributed R workers\n", *nodes, *nodes)
	if *data != "" {
		printRecovery(s)
	}

	if *demo {
		if _, err := s.DB.TableDef("demo"); err != nil {
			seedDemo(s)
		} else {
			fmt.Println(`demo table "demo" recovered from previous run`)
		}
	}

	// Statements route through the serving layer: the shell gets the plan
	// cache and per-statement statistics for free.
	srv := verticadr.NewServer(s, verticadr.ServerConfig{})
	defer srv.Close()
	ctx := context.Background()

	profileAll := false
	explainAll := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("vdr> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\q" || line == "exit" || line == "quit":
			return
		case line == "\\d":
			for _, t := range s.DB.Catalog().List() {
				def, _ := s.DB.TableDef(t)
				rows, _ := s.DB.TableRows(t)
				fmt.Printf("  %s (%d rows, %s)\n", t, rows, def.Seg)
			}
		case line == "\\profile":
			profileAll = !profileAll
			fmt.Printf("profile mode %v\n", map[bool]string{true: "on", false: "off"}[profileAll])
		case line == "\\explain":
			explainAll = !explainAll
			fmt.Printf("explain mode %v\n", map[bool]string{true: "on", false: "off"}[explainAll])
		case line == "\\metrics":
			fmt.Print(telemetry.Default().Dump())
		case line == "\\recover":
			printRecovery(s)
		case line == "\\checkpoint":
			lsn, err := s.Checkpoint()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("checkpoint written at lsn %d; log truncated\n", lsn)
		case line == "\\statements":
			snaps := srv.Statements().Snapshot()
			if len(snaps) == 0 {
				fmt.Println("no statements recorded yet")
				break
			}
			fmt.Printf("%7s %6s %10s %10s %10s %10s  %s\n", "calls", "errs", "total_s", "p50_s", "p95_s", "p99_s", "statement")
			for _, sn := range snaps {
				fmt.Printf("%7d %6d %10.4f %10.6f %10.6f %10.6f  %s\n",
					sn.Calls, sn.Errors, sn.TotalSecs, sn.P50Secs, sn.P95Secs, sn.P99Secs, sn.SQL)
			}
		default:
			q := line
			if profileAll && hasPrefixFold(q, "SELECT") {
				q = "PROFILE " + q
			} else if explainAll && hasPrefixFold(q, "SELECT") {
				q = "EXPLAIN " + q
			}
			res, err := srv.Query(ctx, q)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if res.Profile != nil {
				fmt.Print(res.Profile.String())
			}
			if len(res.Schema()) > 0 {
				names := make([]string, len(res.Schema()))
				for i, c := range res.Schema() {
					names[i] = c.Name
				}
				fmt.Println(strings.Join(names, " | "))
				for i, row := range res.Rows() {
					if i >= 50 {
						fmt.Printf("... (%d rows total)\n", res.Len())
						break
					}
					parts := make([]string, len(row))
					for j, v := range row {
						parts[j] = fmt.Sprintf("%v", v)
					}
					fmt.Println(strings.Join(parts, " | "))
				}
			}
			fmt.Println("OK")
		}
		fmt.Print("vdr> ")
	}
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

// printRecovery reports what startup recovery did (\recover).
func printRecovery(s *verticadr.Session) {
	info := s.DB.RecoveryInfo()
	if info == nil {
		fmt.Println("not a durable session (start with -data DIR)")
		return
	}
	if info.CheckpointDir != "" {
		fmt.Printf("recovery: checkpoint %s (lsn %d) loaded\n", info.CheckpointDir, info.CheckpointLSN)
	} else {
		fmt.Println("recovery: no checkpoint, full log replay")
	}
	fmt.Printf("recovery: replayed %d records / %d bytes in %v (lsn %d..%d)\n",
		info.Replay.Records, info.Replay.Bytes, info.Replay.Elapsed, info.Replay.Start, info.Replay.End)
	if info.Replay.Torn {
		fmt.Println("recovery: torn final record discarded (crash mid-append)")
	}
	if durable, ok := s.DB.WALStats(); ok {
		fmt.Printf("wal: durable lsn %d\n", durable)
	}
}

func seedDemo(s *verticadr.Session) {
	if err := s.Exec(`CREATE TABLE demo (a FLOAT, b FLOAT, y FLOAT)`); err != nil {
		log.Fatal(err)
	}
	const n = 5000
	rng := rand.New(rand.NewSource(1))
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		cols[0][i], cols[1][i] = a, b
		cols[2][i] = 1 + 2*a - 3*b + rng.NormFloat64()*0.1
	}
	if err := s.DB.LoadColumns("demo", cols); err != nil {
		log.Fatal(err)
	}
	x, _, err := s.DB2DArray("demo", []string{"a", "b"}, "")
	if err != nil {
		log.Fatal(err)
	}
	y, _, err := s.DB2DArray("demo", []string{"y"}, "")
	if err != nil {
		log.Fatal(err)
	}
	model, err := verticadr.LM(x, y)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.DeployModel("m", "demo", "demo regression", model); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`demo table "demo" (5000 rows) and model 'm' ready; try:`)
	fmt.Println(`  SELECT count(*), avg(y) FROM demo;`)
	fmt.Println(`  SELECT * FROM R_Models;`)
	fmt.Println(`  SELECT GlmPredict(a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM demo LIMIT 5;`)
}

// remoteShell runs the shell against running vdr-serve nodes instead of an
// in-process session: statements route through the unified cluster client,
// which fails idempotent reads over to another node when one dies.
func remoteShell(addrs string) error {
	ctx := context.Background()
	cfg := verticadr.ClusterConfig{Addrs: strings.Split(addrs, ",")}
	cl, err := verticadr.Dial(ctx, cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("connected: %d node(s) — %s\n", len(cfg.Addrs), addrs)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("vdr> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "\\q" || line == "exit" || line == "quit":
			return nil
		case line == "\\health":
			for _, h := range cl.Health(ctx) {
				state := "up"
				if !h.Up {
					state = "down"
				}
				fmt.Printf("  node %d %s: %s, shards %v\n", h.Node, h.Addr, state, h.Shards)
			}
		default:
			res, err := cl.Query(ctx, line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if res.Profile != nil {
				if js, err := json.MarshalIndent(res.Profile, "", "  "); err == nil {
					fmt.Println(string(js))
				}
			}
			if len(res.Cols) > 0 {
				fmt.Println(strings.Join(res.Cols, " | "))
				for i, row := range res.Rows {
					if i >= 50 {
						fmt.Printf("... (%d rows total)\n", len(res.Rows))
						break
					}
					parts := make([]string, len(row))
					for j, v := range row {
						parts[j] = fmt.Sprintf("%v", v)
					}
					fmt.Println(strings.Join(parts, " | "))
				}
			}
			fmt.Println("OK")
		}
		fmt.Print("vdr> ")
	}
	return nil
}
