// vdr-demo narrates the paper's Figure 3 workflow step by step against a
// live in-process cluster, printing what each line of the R script does and
// the state it produces — a guided tour of the integration.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"verticadr"
	"verticadr/internal/cliflags"
)

func step(n int, what string) {
	fmt.Printf("\n[line %d] %s\n", n, what)
}

func main() {
	nodes := cliflags.Nodes(flag.CommandLine, 4)
	rows := cliflags.Rows(flag.CommandLine, 50000, "training rows")
	chaos := cliflags.ChaosFlags(flag.CommandLine)
	par := cliflags.Parallelism(flag.CommandLine)
	flag.Parse()

	if chaos.Arm() {
		defer func() { fmt.Printf("\n%s\n", chaos.Report()) }()
	}

	step(1, "library(distributedR); library(HPdregression)")
	step(3, fmt.Sprintf("distributedR_start() — %d DB nodes, %d DR workers, YARN-brokered", *nodes, *nodes))
	s, err := verticadr.Start(verticadr.Config{DBNodes: *nodes, UseYARN: true, Parallelism: *par})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	u := s.RM.Usage()
	fmt.Printf("  yarn: db queue holds %d cores, analytics queue holds %d cores\n",
		u.QueueCores["db"], u.QueueCores["analytics"])

	// ETL: the enterprise loads operational data into the database first.
	if err := s.Exec(`CREATE TABLE mytable (a FLOAT, b FLOAT, y FLOAT) SEGMENTED BY ROUND ROBIN`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	n := *rows
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		cols[0][i], cols[1][i] = a, b
		cols[2][i] = 0.5 + 1.5*a + 4*b + rng.NormFloat64()*0.2
	}
	if err := s.DB.LoadColumns("mytable", cols); err != nil {
		log.Fatal(err)
	}
	sizes, _ := s.DB.SegmentSizes("mytable")
	fmt.Printf("  ETL loaded %d rows; segment sizes per node: %v\n", n, sizes)

	step(5, `data <- db2darray("mytable", ...) — Vertica Fast Transfer`)
	x, stats, err := s.DB2DArray("mytable", []string{"a", "b"}, "")
	if err != nil {
		log.Fatal(err)
	}
	y, _, err := s.DB2DArray("mytable", []string{"y"}, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(stats.String(), "\n") {
		fmt.Printf("  %s\n", line)
	}

	step(6, "model <- hpdglm(data$Y, data$X, family=gaussian) — distributed Newton-Raphson")
	model, err := verticadr.GLM(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  converged in %d iterations\n", model.Iterations)

	step(7, "cv.hpdglm(...) — 5-fold cross validation")
	cv, err := verticadr.CrossValidate(x, y, verticadr.GLMOpts{Family: verticadr.Gaussian}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean held-out deviance: %.4f\n", cv.MeanDeviance)

	step(8, "print(coef(model))")
	fmt.Printf("  intercept=%.3f a=%.3f b=%.3f (planted: 0.5, 1.5, 4)\n",
		model.Coefficients[0], model.Coefficients[1], model.Coefficients[2])

	step(9, "deploy.model(model, 'rModel') — serialize into Vertica DFS + R_Models")
	if err := s.DeployModel("rModel", "demo", "forecasting", model); err != nil {
		log.Fatal(err)
	}
	cat, _ := s.Query(`SELECT * FROM R_Models`)
	fmt.Printf("  R_Models: %v\n", cat.Rows())

	step(10, "SELECT glmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable2")
	if err := s.Exec(`CREATE TABLE mytable2 (a FLOAT, b FLOAT)`); err != nil {
		log.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO mytable2 VALUES (1.0, 1.0), (-1.0, 0.5), (0.0, 0.0)`); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := s.Query(`SELECT glmPredict(a, b USING PARAMETERS model='rModel') OVER (PARTITION BEST) FROM mytable2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d in-database predictions in %v:\n", res.Len(), time.Since(start))
	for _, row := range res.Rows() {
		fmt.Printf("    %.3f\n", row[0].(float64))
	}
	fmt.Println("\nworkflow complete.")
}
