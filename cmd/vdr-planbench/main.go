// Command vdr-planbench measures the PR 9 cost-based planner and writes the
// figures to a JSON file (BENCH_PR9.json by default, `make plan-bench`).
// Four access-path families are timed:
//
//   - selective point and range predicates over a B-tree-indexed column,
//     planner on (IndexScan) vs. the legacy full-scan pipeline — the index
//     must win by >= 10x on both shapes;
//   - full scans, grouped aggregation, and dense PREDICT, planner on vs.
//     off — the planner's lowering overhead must stay within 10% of the
//     legacy pipeline on queries where it has no better access path;
//   - the hash join, which only executes through the planner (fact rows/s);
//   - sharded-model PREDICT through the dot-product join, against the dense
//     deployment of the same model (rows/s for both).
//
// The command exits non-zero if any gate fails — the same acceptance gates
// EXPERIMENTS.md records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/models"
	"verticadr/internal/sqlexec"
	"verticadr/internal/vertica"
)

type figure struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RowsPerSec  float64 `json:"rows_per_s,omitempty"`
}

func toFigure(name string, r testing.BenchmarkResult) figure {
	return figure{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		RowsPerSec:  r.Extra["rows/s"],
	}
}

// aOf is a fixed permutation of [0, n): multiplying by an odd constant
// coprime to n scatters sequential ids so zone maps cannot skip blocks and
// a point predicate on `a` is only selective through the index. The range
// case probes the clustered `id` column instead — a bounded range over a
// scattered permutation touches nearly every block during row gather, which
// measures gather bandwidth rather than the access path.
func aOf(i, n int) int64 { return int64(i) * 2654435761 % int64(n) }

func fillFixtures(db *vertica.DB, rows, dimRows int) error {
	ddl := []string{
		`CREATE TABLE pts (id INTEGER, a INTEGER, val FLOAT) SEGMENTED BY HASH(id)`,
		`CREATE TABLE dim (id INTEGER, grp INTEGER) SEGMENTED BY HASH(id)`,
		`CREATE TABLE fact (id INTEGER, dim_id INTEGER, val FLOAT) SEGMENTED BY HASH(id)`,
		`CREATE TABLE feat (c0 FLOAT, c1 FLOAT, c2 FLOAT, c3 FLOAT, c4 FLOAT) SEGMENTED BY HASH(c0)`,
	}
	for _, q := range ddl {
		if err := db.Exec(q); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(9909))
	pts := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeInt64},
		{Name: "val", Type: colstore.TypeFloat64},
	})
	fact := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "dim_id", Type: colstore.TypeInt64},
		{Name: "val", Type: colstore.TypeFloat64},
	})
	feat := colstore.NewBatch(colstore.Schema{
		{Name: "c0", Type: colstore.TypeFloat64},
		{Name: "c1", Type: colstore.TypeFloat64},
		{Name: "c2", Type: colstore.TypeFloat64},
		{Name: "c3", Type: colstore.TypeFloat64},
		{Name: "c4", Type: colstore.TypeFloat64},
	})
	for i := 0; i < rows; i++ {
		if err := pts.AppendRow(int64(i), aOf(i, rows), rng.Float64()); err != nil {
			return err
		}
		if err := fact.AppendRow(int64(i), int64(rng.Intn(dimRows)), rng.Float64()); err != nil {
			return err
		}
		if err := feat.AppendRow(rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), rng.Float64()); err != nil {
			return err
		}
	}
	dim := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "grp", Type: colstore.TypeInt64},
	})
	for i := 0; i < dimRows; i++ {
		if err := dim.AppendRow(int64(i), int64(i%50)); err != nil {
			return err
		}
	}
	for name, b := range map[string]*colstore.Batch{"pts": pts, "dim": dim, "fact": fact, "feat": feat} {
		if err := db.Load(name, b); err != nil {
			return err
		}
	}
	return nil
}

// benchQuery times one query with the planner toggled as given, reporting
// throughput as source-table rows per second.
func benchQuery(db *vertica.DB, q string, tableRows, wantRows int, planner bool) (testing.BenchmarkResult, error) {
	defer sqlexec.SetPlanner(true)
	sqlexec.SetPlanner(planner)
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				failed = err
				b.FailNow()
			}
			if wantRows >= 0 && res.Len() != wantRows {
				failed = fmt.Errorf("rows = %d, want %d", res.Len(), wantRows)
				b.FailNow()
			}
		}
		b.ReportMetric(float64(tableRows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	return r, failed
}

func main() {
	out := flag.String("out", "BENCH_PR9.json", "output JSON path")
	rows := flag.Int("rows", 200_000, "fixture table size")
	flag.Parse()
	const dimRows = 10_000

	db, err := vertica.Open(vertica.Config{Nodes: 4, BlockRows: 2048, UDFInstancesPerNode: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}
	if err := fillFixtures(db, *rows, dimRows); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}
	for _, ddl := range []string{`CREATE INDEX pts_a ON pts (a)`, `CREATE INDEX pts_id ON pts (id)`} {
		if err := db.Exec(ddl); err != nil {
			fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
			os.Exit(1)
		}
	}
	mgr, err := models.NewManager(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}
	model := &algos.GLMModel{
		Family:       algos.Gaussian,
		Coefficients: []float64{0.5, 1, -2, 0.25, 3, -0.75},
	}
	if err := mgr.Deploy("md", "bench", "", model); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}
	// 2 coefficients per shard -> 3 shards; exercises the dot-product join.
	if err := mgr.DeployGLMSharded("ms", "bench", "", model, 2*10); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}

	pointKey := aOf(12345, *rows)
	predict := `SELECT GlmPredict(c0, c1, c2, c3, c4 USING PARAMETERS model='%s') OVER (PARTITION BEST) FROM feat`

	// mode "index": planner (IndexScan) vs. legacy full scan, gate >= 10x.
	// mode "parity": planner vs. legacy on the same access path, gate within
	// 10%. mode "record": planner-only shapes, figures recorded, no ratio.
	cases := []struct {
		name     string
		query    string
		rows     int
		wantRows int
		mode     string
	}{
		{"scan.point.index", fmt.Sprintf("SELECT val FROM pts WHERE a = %d", pointKey), *rows, 1, "index"},
		{"scan.range.index", fmt.Sprintf("SELECT val FROM pts WHERE id >= %d AND id < %d", *rows/2, *rows/2+200), *rows, 200, "index"},
		{"scan.full", "SELECT val FROM pts WHERE val >= 0.999", *rows, -1, "parity"},
		{"agg.full", "SELECT count(*), sum(val), min(val), max(val) FROM pts", *rows, 1, "parity"},
		{"predict.dense", fmt.Sprintf(predict, "md"), *rows, *rows, "parity"},
		{"join.hash", "SELECT d.grp, count(*), sum(fact.val) FROM fact JOIN dim d ON fact.dim_id = d.id GROUP BY d.grp", *rows, 50, "record"},
		{"predict.sharded", fmt.Sprintf(predict, "ms"), *rows, *rows, "record"},
	}

	var figures []figure
	ok := true
	for _, c := range cases {
		on, err := benchQuery(db, c.query, c.rows, c.wantRows, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdr-planbench: %s (planner): %v\n", c.name, err)
			os.Exit(1)
		}
		if c.mode == "record" {
			figures = append(figures, toFigure(c.name+"/planner", on))
			fmt.Printf("%-20s %14.0f rows/s planner\n", c.name, on.Extra["rows/s"])
			continue
		}
		off, err := benchQuery(db, c.query, c.rows, c.wantRows, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdr-planbench: %s (legacy): %v\n", c.name, err)
			os.Exit(1)
		}
		figures = append(figures, toFigure(c.name+"/planner", on), toFigure(c.name+"/legacy", off))
		speedup := float64(off.NsPerOp()) / float64(on.NsPerOp())
		verdict := "ok"
		if c.mode == "index" && speedup < 10 {
			verdict, ok = "FAIL (index below 10x)", false
		} else if c.mode == "parity" && speedup < 0.9 {
			verdict, ok = "FAIL (planner regression beyond 10%)", false
		}
		fmt.Printf("%-20s %14.0f rows/s planner %14.0f rows/s legacy  %6.2fx  %s\n",
			c.name, on.Extra["rows/s"], off.Extra["rows/s"], speedup, verdict)
	}

	data, err := json.MarshalIndent(map[string]any{"benchmarks": figures}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-planbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	if !ok {
		fmt.Fprintln(os.Stderr, "vdr-planbench: acceptance gates failed")
		os.Exit(1)
	}
}
