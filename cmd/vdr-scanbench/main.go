// Command vdr-scanbench measures the PR 8 compressed-execution path and
// writes the figures to a JSON file (BENCH_PR8.json by default, `make
// scan-bench`). Every query runs twice — once with compressed execution
// (predicates evaluated on RLE runs and dictionary codes, late
// materialization, run-aware aggregation) and once decoding every block
// first — over three fixtures: run-heavy (RLE), low-cardinality strings
// (dictionary), and incompressible data (plain blocks).
//
// The command fails if compressed execution is slower than decode-first on
// the compressible fixtures, or more than 10% slower on the incompressible
// one — the same acceptance gates EXPERIMENTS.md records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"verticadr/internal/algos"
	"verticadr/internal/colstore"
	"verticadr/internal/models"
	"verticadr/internal/vertica"
)

type figure struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RowsPerSec  float64 `json:"rows_per_s,omitempty"`
}

func toFigure(name string, r testing.BenchmarkResult) figure {
	return figure{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		RowsPerSec:  r.Extra["rows/s"],
	}
}

// fillFixtures loads the three fixture tables. Runs survive hash
// segmentation because they are long relative to the node count: a run of
// 2000 consecutive ids leaves ~500 consecutive rows per node.
func fillFixtures(db *vertica.DB, rows int) error {
	ddl := []string{
		`CREATE TABLE rle (id INTEGER, grp INTEGER, val FLOAT, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`,
		`CREATE TABLE dict (id INTEGER, cat VARCHAR, val FLOAT) SEGMENTED BY HASH(id)`,
		`CREATE TABLE rnd (id INTEGER, a FLOAT) SEGMENTED BY HASH(id)`,
	}
	for _, q := range ddl {
		if err := db.Exec(q); err != nil {
			return err
		}
	}
	valPalette := []float64{1.5, -2.5, 7, 0.5}
	cats := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}
	rng := rand.New(rand.NewSource(8808))

	rleBatch := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "grp", Type: colstore.TypeInt64},
		{Name: "val", Type: colstore.TypeFloat64},
		{Name: "a", Type: colstore.TypeFloat64},
		{Name: "b", Type: colstore.TypeFloat64},
	})
	dictBatch := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "cat", Type: colstore.TypeString},
		{Name: "val", Type: colstore.TypeFloat64},
	})
	rndBatch := colstore.NewBatch(colstore.Schema{
		{Name: "id", Type: colstore.TypeInt64},
		{Name: "a", Type: colstore.TypeFloat64},
	})
	for i := 0; i < rows; i++ {
		if err := rleBatch.AppendRow(int64(i), int64(i/2000),
			valPalette[(i/500)%len(valPalette)], float64(i%100)*0.5, float64(i%50)); err != nil {
			return err
		}
		if err := dictBatch.AppendRow(int64(i), cats[i%len(cats)],
			valPalette[i%len(valPalette)]); err != nil {
			return err
		}
		if err := rndBatch.AppendRow(int64(i), rng.Float64()); err != nil {
			return err
		}
	}
	for name, b := range map[string]*colstore.Batch{"rle": rleBatch, "dict": dictBatch, "rnd": rndBatch} {
		if err := db.Load(name, b); err != nil {
			return err
		}
	}
	return nil
}

// benchQuery runs one query under testing.Benchmark with compressed
// execution set as given, reporting table-scan throughput (table rows per
// second, the serial-scan figure EXPERIMENTS.md tracks).
func benchQuery(db *vertica.DB, q string, tableRows, wantRows int, compressed bool) (testing.BenchmarkResult, error) {
	defer colstore.SetCompressedEval(true)
	colstore.SetCompressedEval(compressed)
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(q)
			if err != nil {
				failed = err
				b.FailNow()
			}
			if wantRows >= 0 && res.Len() != wantRows {
				failed = fmt.Errorf("rows = %d, want %d", res.Len(), wantRows)
				b.FailNow()
			}
		}
		b.ReportMetric(float64(tableRows*b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	return r, failed
}

func main() {
	out := flag.String("out", "BENCH_PR8.json", "output JSON path")
	rows := flag.Int("rows", 200_000, "fixture table size")
	flag.Parse()

	db, err := vertica.Open(vertica.Config{Nodes: 4, BlockRows: 2048, UDFInstancesPerNode: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-scanbench:", err)
		os.Exit(1)
	}
	if err := fillFixtures(db, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-scanbench:", err)
		os.Exit(1)
	}
	mgr, err := models.NewManager(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-scanbench:", err)
		os.Exit(1)
	}
	if err := mgr.Deploy("m", "bench", "", &algos.GLMModel{
		Family: algos.Gaussian, Coefficients: []float64{1, 2, -0.5, 0.25},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-scanbench:", err)
		os.Exit(1)
	}

	midGrp := (*rows / 2000) / 2
	cases := []struct {
		name     string
		query    string
		wantRows int
		// improved: compressed must beat decoded outright; otherwise a 10%
		// regression tolerance applies (incompressible / full-table shapes
		// where compressed execution has nothing to chew on).
		improved bool
	}{
		{"scan.rle.filter", fmt.Sprintf("SELECT val FROM rle WHERE grp = %d", midGrp), 2000, true},
		{"scan.dict.filter", "SELECT val FROM dict WHERE cat = 'c3'", *rows / 8, true},
		{"agg.rle.runaware", "SELECT grp, count(*), sum(val), min(val), max(val) FROM rle GROUP BY grp", (*rows + 1999) / 2000, true},
		{"scan.rnd.filter", "SELECT a FROM rnd WHERE a >= 0.5", -1, false},
		{"predict.rle.filtered", fmt.Sprintf("SELECT GlmPredict(id, a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM rle WHERE grp = %d", midGrp), 2000, true},
		{"predict.rle.full", "SELECT GlmPredict(id, a, b USING PARAMETERS model='m') OVER (PARTITION BEST) FROM rle", *rows, false},
	}

	var figures []figure
	ok := true
	for _, c := range cases {
		on, err := benchQuery(db, c.query, *rows, c.wantRows, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdr-scanbench: %s (compressed): %v\n", c.name, err)
			os.Exit(1)
		}
		off, err := benchQuery(db, c.query, *rows, c.wantRows, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vdr-scanbench: %s (decoded): %v\n", c.name, err)
			os.Exit(1)
		}
		figures = append(figures, toFigure(c.name+"/compressed", on), toFigure(c.name+"/decoded", off))
		speedup := on.Extra["rows/s"] / off.Extra["rows/s"]
		verdict := "ok"
		if c.improved && speedup <= 1.0 {
			verdict, ok = "FAIL (expected improvement)", false
		} else if !c.improved && speedup < 0.9 {
			verdict, ok = "FAIL (regression beyond 10%)", false
		}
		fmt.Printf("%-24s %14.0f rows/s compressed %14.0f rows/s decoded  %5.2fx  %s\n",
			c.name, on.Extra["rows/s"], off.Extra["rows/s"], speedup, verdict)
	}

	data, err := json.MarshalIndent(map[string]any{"benchmarks": figures}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vdr-scanbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vdr-scanbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	if !ok {
		fmt.Fprintln(os.Stderr, "vdr-scanbench: acceptance gates failed")
		os.Exit(1)
	}
}
