package verticadr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"verticadr/internal/algos"
	"verticadr/internal/cluster"
	"verticadr/internal/core"
	"verticadr/internal/server"
	"verticadr/internal/vft"
)

// An in-process 2-node cluster behind the public API: Dial with several
// addresses, run the full client surface, then kill the connected node and
// require transparent failover with prepared-statement replay.

type clientTestNode struct {
	sess *core.Session
	tcp  *server.TCPServer
	addr string
}

func startClientCluster(t *testing.T, n int) []clientTestNode {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	topo, err := cluster.Topology{Addrs: addrs, Shards: n, Replicas: n}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]clientTestNode, n)
	for i := 0; i < n; i++ {
		sess, err := core.Start(core.Config{DBNodes: topo.Shards, DRWorkers: 2, InstancesPerWorker: 1, BlockRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sess.Close)
		srv := server.New(sess, server.Config{})
		router, err := cluster.NewRouter(cluster.Config{
			Addrs: addrs, Shards: topo.Shards, Replicas: topo.Replicas,
			ProbeInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(router.Close)
		peer := cluster.NewPeer(srv, topo, i)
		tcp, err := server.Listen(srv, addrs[i],
			server.WithFrontend(router),
			server.WithExtension(cluster.NodeExtension(peer, router)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = clientTestNode{sess: sess, tcp: tcp, addr: addrs[i]}
		t.Cleanup(func() { _ = tcp.Close() })
	}
	return nodes
}

func TestClientClusterEndToEnd(t *testing.T) {
	nodes := startClientCluster(t, 2)
	ctx := context.Background()
	cl, err := Dial(ctx, ClusterConfig{Addrs: []string{nodes[0].addr, nodes[1].addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Exec(ctx, `CREATE TABLE pts (id INTEGER, a FLOAT, b FLOAT) SEGMENTED BY HASH(id)`); err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for i := 0; i < 64; i++ {
		rows = append(rows, []any{int64(i), float64(i%7) / 2, float64(i % 5)})
	}
	if err := cl.Load(ctx, "pts", rows); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Query(ctx, `SELECT count(*) AS n FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	// Front-door rows cross as JSON, so numbers arrive as float64.
	if got := res.Rows[0][0].(float64); got != 64 {
		t.Fatalf("count = %v, want 64", got)
	}

	if err := cl.Prepare(ctx, "big", `SELECT id FROM pts WHERE a > ? ORDER BY id`); err != nil {
		t.Fatal(err)
	}
	ex, err := cl.Execute(ctx, "big", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(ex.Rows)
	if firstLen == 0 {
		t.Fatal("prepared execute returned no rows")
	}

	model := &algos.GLMModel{Family: algos.Gaussian, Coefficients: []float64{1, 2, 3}, Converged: true}
	for _, n := range nodes {
		if err := n.sess.DeployModel("m", "me", "client test model", model); err != nil {
			t.Fatal(err)
		}
	}
	pr, err := cl.Predict(ctx, "m", "pts", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != 64 {
		t.Fatalf("predict returned %d rows, want 64", len(pr.Rows))
	}

	for _, h := range cl.Health(ctx) {
		if !h.Up {
			t.Fatalf("node %d down before the kill: %+v", h.Node, h)
		}
	}

	// Kill the node the client dialed first. Reads must fail over, and the
	// replayed prepared statement must keep answering identically.
	_ = nodes[0].tcp.Close()
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping did not fail over: %v", err)
	}
	ex2, err := cl.Execute(ctx, "big", 2.0)
	if err != nil {
		t.Fatalf("prepared execute did not survive failover: %v", err)
	}
	if len(ex2.Rows) != firstLen {
		t.Fatalf("failover execute returned %d rows, want %d", len(ex2.Rows), firstLen)
	}
	res, err = cl.Query(ctx, `SELECT count(*) AS n FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 64 {
		t.Fatalf("post-failover count = %v, want 64", got)
	}

	hs := cl.Health(ctx)
	if hs[0].Up || !hs[1].Up {
		t.Fatalf("health after kill = %+v", hs)
	}

	// With every node gone, reads surface ErrNodeDown.
	_ = nodes[1].tcp.Close()
	if _, err := cl.Query(ctx, `SELECT count(*) FROM pts`); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("query with no nodes = %v, want ErrNodeDown", err)
	}
}

// startReplyLossNode serves the wire protocol but tears the connection
// down on every "query" request after reading it — the server may have
// executed the statement, only the reply is lost. Pings are answered so
// the node looks healthy at dial time.
func startReplyLossNode(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var buf []byte
				for {
					frame, err := vft.ReadFrame(conn, buf)
					if err != nil {
						return
					}
					buf = frame
					var req struct {
						Op string `json:"op"`
					}
					if json.Unmarshal(frame, &req) == nil && req.Op == "query" {
						return // drop the connection: outcome unknown
					}
					resp, _ := json.Marshal(map[string]string{"code": "ok"})
					if vft.WriteFrame(conn, resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// A write whose outcome is unknown — the node read the INSERT and the
// reply was lost — must surface the transport error instead of re-running
// on the next node (which would double-apply rows). Reads keep failing
// over.
func TestWriteDoesNotFailOverAfterSend(t *testing.T) {
	nodes := startClientCluster(t, 1)
	ctx := context.Background()
	setup, err := Dial(ctx, ClusterConfig{Addrs: []string{nodes[0].addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.Exec(ctx, `CREATE TABLE wt (k INTEGER, v FLOAT) SEGMENTED BY HASH(k)`); err != nil {
		t.Fatal(err)
	}

	lossy := startReplyLossNode(t)
	cl, err := Dial(ctx, ClusterConfig{Addrs: []string{lossy, nodes[0].addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	err = cl.Exec(ctx, `INSERT INTO wt VALUES (1, 0.5)`)
	if err == nil {
		t.Fatal("INSERT with lost reply returned nil, want the transport error surfaced")
	}
	if !errors.Is(err, ErrNodeDown) && !errors.Is(err, ErrClosed) {
		t.Fatalf("INSERT with lost reply = %v, want a transport error", err)
	}
	// The statement must not have been replayed on the healthy node.
	res, err := setup.Query(ctx, `SELECT count(*) AS n FROM wt`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 0 {
		t.Fatalf("row count after refused failover = %v, want 0 (no double-apply)", got)
	}

	// The same client still fails reads over to the healthy node.
	res, err = cl.Query(ctx, `SELECT count(*) AS n FROM wt`)
	if err != nil {
		t.Fatalf("read did not fail over: %v", err)
	}
	if got := res.Rows[0][0].(float64); got != 0 {
		t.Fatalf("failover count = %v, want 0", got)
	}
}

// TestDialServerCompat pins the migration contract: DialServer still
// answers with a working client against a single plain server.
func TestDialServerCompat(t *testing.T) {
	sess, err := core.Start(core.Config{DBNodes: 2, DRWorkers: 2, InstancesPerWorker: 1, BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	if err := sess.Exec(`CREATE TABLE kv (k INTEGER, v FLOAT) SEGMENTED BY HASH(k)`); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sess, server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	topo, err := cluster.Topology{Addrs: []string{addr}, Shards: 2, Replicas: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := server.Listen(srv, addr,
		server.WithExtension(cluster.NewPeer(srv, topo, 0)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tcp.Close() })

	cl, err := DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := cl.Exec(ctx, fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d.5)`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The plain server registers the peer extension too, so the unified
	// Load path works against one node exactly like a cluster.
	if err := cl.Load(ctx, "kv", [][]any{{int64(7), 0.5}, {int64(8), 1.5}}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(ctx, `SELECT count(*) AS n FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(float64); got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
}
