GO ?= go

# Tier-1 verify (referenced from ROADMAP.md): everything must build and
# every test must pass before a PR lands.
.PHONY: check
check: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# Race-check the packages with real shared-state concurrency: the
# telemetry registry, the vft staging hub, and the dr scheduler.
.PHONY: race
race:
	$(GO) test -race ./internal/telemetry/... ./internal/vft/... ./internal/dr/...

.PHONY: bench
bench:
	$(GO) run ./cmd/vdr-bench -metrics bench-metrics.json
