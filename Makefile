GO ?= go

# Tier-1 verify (referenced from ROADMAP.md): everything must build, every
# test must pass, the tree must be lint-clean, the bounded compressed-
# execution difftest must agree bitwise, and the two compressed-equivalence
# fuzz targets get a short smoke so the harness runs on every pass.
.PHONY: check
check: lint build test race difftest-short fuzz-smoke

# Bounded runs of the differential suites (the full sweeps run under plain
# `go test`; this re-runs the bounded variants with a fresh binary so `make
# check` exercises the flag path too): the encoding-aware compressed suite,
# the planner-on/off single-table suite over indexed tables, and the
# hash-join suite against the nested-loop reference.
.PHONY: difftest-short
difftest-short:
	$(GO) test -count=1 \
		-run='TestCompressedDifferentialAdversarial|TestDifferentialEngineVsReference|TestDifferentialJoinVsReference' \
		./internal/sqlexec/difftest/ -difftest.short

# Short fuzz smoke: the compressed-execution equivalence targets plus the
# SQL parser (the planner consumes whatever the parser yields, so parse
# robustness is tier-1); enough to replay each corpus and explore a little.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseSelect -fuzztime=10s ./internal/sqlparse/
	$(GO) test -run='^$$' -fuzz=FuzzCompressedScanEquivalence -fuzztime=10s ./internal/colstore/
	$(GO) test -run='^$$' -fuzz=FuzzCompressedAggregateEquivalence -fuzztime=10s ./internal/sqlexec/

# Lint: go vet plus gofmt enforcement (gofmt -l output fails the build).
.PHONY: lint
lint: vet
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# Race-check the packages with real shared-state concurrency: the
# telemetry registry, the vft staging hub + pooled export pipeline, the dr
# scheduler, the yarn resource manager, the simulated network, the fault
# injector, the intra-node parallel execution engine (worker pool, parallel
# scans, chunked aggregation, parallel IRLS, blocked matrix multiply), the
# pooled scoring/splitting paths (models, udf writers, darray fill,
# catalog splitter), and the durability plane (wal group commit, txn MVCC
# snapshots, the vertica commit/checkpoint protocol).
.PHONY: race
race:
	$(GO) test -race ./internal/telemetry/... ./internal/vft/... ./internal/dr/... \
		./internal/yarn/... ./internal/simnet/... ./internal/faults/... \
		./internal/parallel/... ./internal/colstore/... ./internal/sqlexec/... \
		./internal/algos/... ./internal/linalg/... ./internal/models/... \
		./internal/udf/... ./internal/darray/... ./internal/catalog/... \
		./internal/server/... ./internal/core/... \
		./internal/wal/... ./internal/txn/... ./internal/vertica/... \
		./internal/cluster/...

# Microbenchmarks for the pooled transfer + vectorized prediction paths;
# writes BENCH_PR4.json (committed alongside EXPERIMENTS.md).
.PHONY: bench
bench:
	$(GO) run ./cmd/vdr-microbench -out BENCH_PR4.json

# Paper-figure benchmark series (Figs. 12-20 shapes).
.PHONY: bench-figures
bench-figures:
	$(GO) run ./cmd/vdr-bench -metrics bench-metrics.json

# Chaos suite: the recovery-path tests (fault injection, retransmission,
# dedup, worker failover, session reaping) under the race detector. Seeds
# are fixed inside the tests, so failures reproduce exactly.
.PHONY: chaos
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Recover|Injected|Fault|Retr|Abort|Reap|FailWorker|Idempotent|Timeout|Survives|Failover' \
		./internal/faults/... ./internal/vft/... ./internal/dr/... ./internal/yarn/... ./internal/odbc/... \
		./internal/parallel/... ./internal/colstore/... ./internal/models/... ./internal/udf/... \
		./internal/server/... ./internal/wal/... ./internal/vertica/... ./internal/cluster/...

# Crash-recovery suite: injected crashes at the WAL append/fsync/checkpoint
# boundaries, torn-tail handling, checkpoint replay, MVCC snapshot isolation
# under concurrent ingest — the kill/replay acceptance tests, under -race.
.PHONY: recover
recover:
	$(GO) test -race -count=1 -run 'Recover|Durab|Crash|WAL|Torn|Checkpoint|Snapshot|Redeploy|GroupCommit' \
		./internal/wal/... ./internal/txn/... ./internal/vertica/... \
		./internal/cluster/... ./internal/models/... \
		./internal/colstore/... ./internal/core/...

# Serving-layer benchmark: closed-loop load generator against the concurrent
# query server (unprepared vs. prepared+cached PREDICT, then an overload
# phase); writes BENCH_PR5.json (committed alongside EXPERIMENTS.md). Fails
# if the cached path is below 2x or admission control never sheds.
.PHONY: serve-bench
serve-bench:
	$(GO) run ./cmd/vdr-serve -bench -out BENCH_PR5.json

# Durability benchmark: COPY commit throughput at client concurrency 1/8/64
# against a durable database (the group-commit effect) plus the recovery
# replay rate; writes BENCH_PR7.json (committed alongside EXPERIMENTS.md).
# Fails if concurrent committers are slower than the serial stream.
.PHONY: wal-bench
wal-bench:
	$(GO) run ./cmd/vdr-walbench -out BENCH_PR7.json

# Compressed-execution benchmark: serial scans, run-aware aggregation, and
# PREDICT over RLE/dictionary/incompressible fixtures, each run with
# compressed execution on and off; writes BENCH_PR8.json (committed alongside
# EXPERIMENTS.md). Fails if compressed execution loses on compressible data
# or regresses more than 10% on incompressible data.
.PHONY: scan-bench
scan-bench:
	$(GO) run ./cmd/vdr-scanbench -out BENCH_PR8.json

# Planner benchmark: B-tree index point/range scans vs. the legacy full
# scan (gate: >= 10x), planner-vs-legacy parity on full-scan/aggregate/
# PREDICT shapes (gate: within 10%), hash-join and sharded-PREDICT
# throughput; writes BENCH_PR9.json (committed alongside EXPERIMENTS.md).
.PHONY: plan-bench
plan-bench:
	$(GO) run ./cmd/vdr-planbench -out BENCH_PR9.json

# Cluster benchmark: routed vs single-process SELECT/PREDICT throughput at
# 1/2/3 peers over real loopback TCP, replica-kill failover latency, and
# the calibrated own-CPU-per-node simulation; writes BENCH_PR10.json
# (committed alongside EXPERIMENTS.md). Fails if simulated 1->3-node
# PREDICT scaling drops below 1.6x or routed results diverge.
.PHONY: cluster-bench
cluster-bench:
	$(GO) run ./cmd/vdr-clusterbench -out BENCH_PR10.json

# Fuzz smoke: run each fuzz target briefly (Go keeps regression inputs in
# testdata/fuzz, which plain `go test` replays on every run). Raise FUZZTIME
# for a longer exploratory session.
FUZZTIME ?= 10s
.PHONY: fuzz
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseSelect -fuzztime=$(FUZZTIME) ./internal/sqlparse/
	$(GO) test -run='^$$' -fuzz=FuzzEncodingRoundTrip -fuzztime=$(FUZZTIME) ./internal/colstore/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeBlock -fuzztime=$(FUZZTIME) ./internal/colstore/
	$(GO) test -run='^$$' -fuzz=FuzzCompressedScanEquivalence -fuzztime=$(FUZZTIME) ./internal/colstore/
	$(GO) test -run='^$$' -fuzz=FuzzCompressedAggregateEquivalence -fuzztime=$(FUZZTIME) ./internal/sqlexec/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeChunk -fuzztime=$(FUZZTIME) ./internal/vft/
	$(GO) test -run='^$$' -fuzz=FuzzWALRecord -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run='^$$' -fuzz=FuzzWALRecordStream -fuzztime=$(FUZZTIME) ./internal/wal/
