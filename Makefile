GO ?= go

# Tier-1 verify (referenced from ROADMAP.md): everything must build and
# every test must pass before a PR lands.
.PHONY: check
check: vet build test race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# Race-check the packages with real shared-state concurrency: the
# telemetry registry, the vft staging hub, the dr scheduler, the yarn
# resource manager, the simulated network, and the fault injector.
.PHONY: race
race:
	$(GO) test -race ./internal/telemetry/... ./internal/vft/... ./internal/dr/... \
		./internal/yarn/... ./internal/simnet/... ./internal/faults/...

.PHONY: bench
bench:
	$(GO) run ./cmd/vdr-bench -metrics bench-metrics.json

# Chaos suite: the recovery-path tests (fault injection, retransmission,
# dedup, worker failover, session reaping) under the race detector. Seeds
# are fixed inside the tests, so failures reproduce exactly.
.PHONY: chaos
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Recover|Injected|Fault|Retr|Abort|Reap|FailWorker|Idempotent|Timeout' \
		./internal/faults/... ./internal/vft/... ./internal/dr/... ./internal/yarn/... ./internal/odbc/...
